type state = Starting | Established | Degraded | Backoff | Closed

let state_name = function
  | Starting -> "starting"
  | Established -> "established"
  | Degraded -> "degraded"
  | Backoff -> "backoff"
  | Closed -> "closed"

let legal from to_ =
  match (from, to_) with
  | Starting, (Established | Degraded | Backoff | Closed) -> true
  | Established, (Degraded | Closed) -> true
  | Degraded, (Established | Backoff | Closed) -> true
  | Backoff, (Starting | Closed) -> true
  | _ -> false

type config = {
  degrade_expiries : int;
  dead_expiries : int;
  starve_factor : float;
  backoff_base : float;
  backoff_max : float;
  backoff_jitter : float;
  close_timeout : float;
  health_period : float;
}

let default_config =
  {
    degrade_expiries = 1;
    dead_expiries = 3;
    starve_factor = 4.;
    backoff_base = 0.5;
    backoff_max = 8.;
    backoff_jitter = 0.1;
    close_timeout = 1.;
    health_period = 0.1;
  }

let check_config c =
  if c.degrade_expiries < 1 then
    invalid_arg "Wire.Supervisor: degrade_expiries must be >= 1";
  if c.dead_expiries < c.degrade_expiries then
    invalid_arg "Wire.Supervisor: dead_expiries must be >= degrade_expiries";
  let pos what v =
    if not (Float.is_finite v) || v <= 0. then
      invalid_arg (Printf.sprintf "Wire.Supervisor: %s must be positive" what)
  in
  pos "starve_factor" c.starve_factor;
  pos "backoff_base" c.backoff_base;
  pos "backoff_max" c.backoff_max;
  if not (Float.is_finite c.backoff_jitter) || c.backoff_jitter < 0. then
    invalid_arg "Wire.Supervisor: backoff_jitter must be non-negative";
  pos "close_timeout" c.close_timeout;
  pos "health_period" c.health_period;
  c

type t = {
  loop : Loop.t;
  rt : Engine.Runtime.t;
  tfrc_config : Tfrc.Tfrc_config.t;
  sup : config;
  flow : int;
  send_out : string -> unit;
  rng : Engine.Rng.t;
  mutate : bool;
  mutable st : state;
  mutable cur_epoch : int;
  mutable machine : Tfrc.Tfrc_sender.t;
  mutable restarts : int;
  mutable last_contact : float;
  mutable transitions : (float * state * state) list;  (* newest first *)
  mutable fb_delivered : int;
  mutable stale : int;
  mutable ctrl : int;
  mutable decode_errors : int;
  mutable post_quiesce : int;
  mutable tot_sent : int;  (* packets sent by retired incarnations *)
  mutable health_timer : Loop.timer option;
  mutable backoff_timer : Loop.timer option;
  mutable close_timer : Loop.timer option;
  mutable close_pending : bool;
  mutable quiesced : bool;
}

let trace_decode_error rt err =
  let tr = Engine.Runtime.trace rt in
  if Engine.Trace.active tr then
    Engine.Trace.emit tr ~time:(Engine.Runtime.now rt) ~cat:"wire"
      ~name:"decode_error"
      [ ("error", Engine.Trace.Str (Codec.error_to_string err)) ]

(* Records unconditionally — the mutate plant uses this to emit an
   illegal (possibly self-loop) edge the invariant rule must flag. *)
let record_transition t to_ =
  let from = t.st in
  let time = Loop.now t.loop in
  t.st <- to_;
  t.transitions <- (time, from, to_) :: t.transitions;
  let tr = Engine.Runtime.trace t.rt in
  if Engine.Trace.active tr then
    Engine.Trace.emit tr ~time ~cat:"wire" ~name:"sup_transition"
      [
        ("flow", Engine.Trace.Int t.flow);
        ("from", Engine.Trace.Str (state_name from));
        ("to", Engine.Trace.Str (state_name to_));
        ("epoch", Engine.Trace.Int t.cur_epoch);
      ]

let transition t to_ = if t.st <> to_ then record_transition t to_

(* The application's pacing ceiling survives a restart: a fresh
   incarnation slow-starts from scratch, but against the same limit. *)
let new_machine t =
  let m =
    Tfrc.Tfrc_sender.create t.rt ~config:t.tfrc_config ~flow:t.flow
      ~transmit:(fun pkt -> t.send_out (Codec.encode ~epoch:t.cur_epoch pkt))
      ()
  in
  Tfrc.Tfrc_sender.set_app_limit m (Tfrc.Tfrc_sender.app_limit t.machine);
  m

let retire_machine t =
  t.tot_sent <- t.tot_sent + Tfrc.Tfrc_sender.packets_sent t.machine;
  Tfrc.Tfrc_sender.stop t.machine

let cancel_timer = function Some tm -> Loop.cancel tm | None -> ()

(* The no-feedback machinery floors halvings at min_rate; a small margin
   keeps the floor test robust to the exact floating-point floor value. *)
let at_floor t rate = rate <= t.tfrc_config.Tfrc.Tfrc_config.min_rate *. 1.001

(* Starts the next incarnation. The caller owns the lifecycle edge into
   [Starting]; this only swaps machinery and bumps the epoch. *)
let restart t =
  t.backoff_timer <- None;
  t.cur_epoch <-
    (if t.cur_epoch >= Codec.max_epoch then 1 else t.cur_epoch + 1);
  t.machine <- new_machine t;
  let now = Loop.now t.loop in
  t.last_contact <- now;
  Tfrc.Tfrc_sender.start t.machine ~at:now

let die t =
  retire_machine t;
  if t.mutate then begin
    (* Planted bug for the soak's --mutate self-test: restart
       immediately, skipping Backoff — an illegal edge (possibly a
       self-loop) the wire-sup-legal invariant rule must flag. *)
    t.restarts <- t.restarts + 1;
    record_transition t Starting;
    restart t
  end
  else begin
    if t.st = Established then transition t Degraded;
    transition t Backoff;
    t.restarts <- t.restarts + 1;
    let delay =
      Float.min t.sup.backoff_max
        (t.sup.backoff_base *. Float.pow 2. (float_of_int (t.restarts - 1)))
    in
    let delay =
      if t.sup.backoff_jitter > 0. then
        delay *. (1. +. Engine.Rng.float t.rng t.sup.backoff_jitter)
      else delay
    in
    t.backoff_timer <-
      Some
        (Loop.after t.loop delay (fun () ->
             transition t Starting;
             restart t))
  end

let finish_close t =
  cancel_timer t.close_timer;
  t.close_timer <- None;
  t.close_pending <- false;
  if t.st <> Closed then begin
    retire_machine t;
    cancel_timer t.backoff_timer;
    t.backoff_timer <- None;
    transition t Closed
  end

let rec health_tick t =
  (match t.st with
  | Closed -> ()
  | Backoff ->
      (* Session is down; the backoff timer owns progress. *)
      ()
  | (Starting | Established | Degraded) when t.close_pending ->
      (* Teardown in progress; the CLOSE timer owns the outcome. *)
      ()
  | Starting | Established | Degraded ->
      let m = t.machine in
      let exp = Tfrc.Tfrc_sender.expiries_since_feedback m in
      let rate = Tfrc.Tfrc_sender.rate m in
      if exp >= t.sup.dead_expiries && at_floor t rate then die t
      else if t.st = Established then begin
        let now = Loop.now t.loop in
        let starved =
          now -. t.last_contact
          > t.sup.starve_factor *. t.tfrc_config.Tfrc.Tfrc_config.t_mbi
        in
        if exp >= t.sup.degrade_expiries || starved then transition t Degraded
      end);
  if t.st <> Closed && not t.quiesced then
    t.health_timer <-
      Some (Loop.after t.loop t.sup.health_period (fun () -> health_tick t))

let handle_datagram t data _src =
  match Codec.decode t.rt data with
  | Ok { body = Codec.Packet pkt; epoch = e; _ } ->
      if t.quiesced then t.post_quiesce <- t.post_quiesce + 1
      else if t.st = Closed || t.st = Backoff || e <> t.cur_epoch then
        t.stale <- t.stale + 1
      else begin
        t.fb_delivered <- t.fb_delivered + 1;
        t.last_contact <- Loop.now t.loop;
        if t.st = Starting || t.st = Degraded then transition t Established;
        Tfrc.Tfrc_sender.recv t.machine pkt
      end
  | Ok { body = Codec.Close; epoch = e; flow } ->
      t.ctrl <- t.ctrl + 1;
      if not t.quiesced && t.st <> Closed then begin
        t.send_out
          (Codec.encode_close_ack ~epoch:e ~flow ~now:(Loop.now t.loop));
        finish_close t
      end
  | Ok { body = Codec.Close_ack; epoch = e; _ } ->
      t.ctrl <- t.ctrl + 1;
      if (not t.quiesced) && t.close_pending && e = t.cur_epoch then
        finish_close t
  | Error err ->
      t.decode_errors <- t.decode_errors + 1;
      trace_decode_error t.rt err

let create loop udp ~config ?(sup = default_config) ~flow ~dest ?send ~seed
    ?(mutate = false) () =
  let sup = check_config sup in
  let rt = Loop.runtime loop in
  let send_out =
    match send with
    | Some f -> f
    | None -> fun frame -> Udp.send udp ~dest frame
  in
  (* The first machine's transmit closure needs the supervisor record
     (for the live epoch) before the record exists; tie the knot with a
     cell that is filled before any timer can fire. *)
  let cell = ref None in
  let machine0 =
    Tfrc.Tfrc_sender.create rt ~config ~flow
      ~transmit:(fun pkt ->
        match !cell with
        | Some t -> t.send_out (Codec.encode ~epoch:t.cur_epoch pkt)
        | None -> send_out (Codec.encode ~epoch:1 pkt))
      ()
  in
  let t =
    {
      loop;
      rt;
      tfrc_config = config;
      sup;
      flow;
      send_out;
      rng = Engine.Rng.for_key ~seed "wire/supervisor";
      mutate;
      st = Starting;
      cur_epoch = 1;
      machine = machine0;
      restarts = 0;
      last_contact = 0.;
      transitions = [];
      fb_delivered = 0;
      stale = 0;
      ctrl = 0;
      decode_errors = 0;
      post_quiesce = 0;
      tot_sent = 0;
      health_timer = None;
      backoff_timer = None;
      close_timer = None;
      close_pending = false;
      quiesced = false;
    }
  in
  cell := Some t;
  Udp.set_handler udp (fun data src -> handle_datagram t data src);
  (* Hard send errnos degrade an established session immediately — the
     paper's rate machinery never sees them (sends look like silence),
     so the lifecycle layer must. *)
  Udp.set_health_handler udp (fun _err ->
      if t.st = Established && not t.quiesced then transition t Degraded);
  t

let start t ~at =
  t.last_contact <- Loop.now t.loop;
  Tfrc.Tfrc_sender.start t.machine ~at;
  health_tick t

let close t =
  if t.st <> Closed && (not t.close_pending) && not t.quiesced then begin
    t.close_pending <- true;
    t.send_out
      (Codec.encode_close ~epoch:t.cur_epoch ~flow:t.flow
         ~now:(Loop.now t.loop));
    (* Stop pushing data while the handshake is in flight. *)
    Tfrc.Tfrc_sender.stop t.machine;
    t.close_timer <-
      Some (Loop.after t.loop t.sup.close_timeout (fun () -> finish_close t))
  end

let quiesce t =
  if not t.quiesced then begin
    t.quiesced <- true;
    Tfrc.Tfrc_sender.stop t.machine;
    cancel_timer t.health_timer;
    cancel_timer t.backoff_timer;
    cancel_timer t.close_timer
  end

let state t = t.st
let epoch t = t.cur_epoch
let restarts t = t.restarts
let machine t = t.machine
let transitions t = List.rev t.transitions
let feedback_delivered t = t.fb_delivered
let stale_frames t = t.stale
let ctrl_frames t = t.ctrl
let decode_errors t = t.decode_errors
let post_quiesce t = t.post_quiesce
let data_packets_sent t = t.tot_sent + Tfrc.Tfrc_sender.packets_sent t.machine

module Receiver = struct
  type r = {
    loop : Loop.t;
    rt : Engine.Runtime.t;
    tfrc_config : Tfrc.Tfrc_config.t;
    flow : int;
    send_out : string -> unit;
    pinned : bool;
    mutable peer : Unix.sockaddr option;
    mutable cur_epoch : int;
    mutable machine : Tfrc.Tfrc_receiver.t;
    mutable epochs_seen : int;
    mutable delivered : int;
    mutable stale : int;
    mutable ctrl : int;
    mutable decode_errors : int;
    mutable post_quiesce : int;
    mutable tot_received : int;
    mutable tot_feedbacks : int;
    mutable closed : bool;
    mutable quiesced : bool;
  }

  let new_machine r =
    Tfrc.Tfrc_receiver.create r.rt ~config:r.tfrc_config ~flow:r.flow
      ~transmit:(fun pkt -> r.send_out (Codec.encode ~epoch:r.cur_epoch pkt))
      ()

  (* A fresh sender incarnation: its sequence numbers restart, so the
     loss/RTT state must too. Latest epoch wins. *)
  let adopt_epoch r e =
    r.tot_received <-
      r.tot_received + Tfrc.Tfrc_receiver.packets_received r.machine;
    r.tot_feedbacks <-
      r.tot_feedbacks + Tfrc.Tfrc_receiver.feedbacks_sent r.machine;
    Tfrc.Tfrc_receiver.stop r.machine;
    r.cur_epoch <- e;
    r.epochs_seen <- r.epochs_seen + 1;
    r.closed <- false;
    r.machine <- new_machine r

  let deliver r pkt src =
    (* Latest-wins peer learning: a sender restarting on a new ephemeral
       port gets feedback as soon as its frame lands. *)
    if not r.pinned then r.peer <- Some src;
    r.delivered <- r.delivered + 1;
    Tfrc.Tfrc_receiver.recv r.machine pkt

  let handle r data src =
    match Codec.decode r.rt data with
    | Ok { body = Codec.Packet pkt; epoch = e; _ } ->
        if r.quiesced then r.post_quiesce <- r.post_quiesce + 1
        else if e > r.cur_epoch then begin
          adopt_epoch r e;
          deliver r pkt src
        end
        else if e < r.cur_epoch || r.closed then r.stale <- r.stale + 1
        else deliver r pkt src
    | Ok { body = Codec.Close; epoch = e; flow } ->
        r.ctrl <- r.ctrl + 1;
        if not r.quiesced then begin
          if not r.pinned then r.peer <- Some src;
          r.send_out
            (Codec.encode_close_ack ~epoch:e ~flow ~now:(Loop.now r.loop));
          if e >= r.cur_epoch then begin
            r.cur_epoch <- e;
            r.closed <- true;
            Tfrc.Tfrc_receiver.stop r.machine
          end
        end
    | Ok { body = Codec.Close_ack; _ } -> r.ctrl <- r.ctrl + 1
    | Error err ->
        r.decode_errors <- r.decode_errors + 1;
        trace_decode_error r.rt err

  let create loop udp ~config ~flow ?reply_to ?send () =
    let rt = Loop.runtime loop in
    let cell = ref None in
    let send_out =
      match send with
      | Some f -> f
      | None -> (
          fun frame ->
            let dest =
              match !cell with Some r -> r.peer | None -> reply_to
            in
            match dest with
            | Some dest -> Udp.send udp ~dest frame
            | None -> ())
    in
    let machine0 =
      Tfrc.Tfrc_receiver.create rt ~config ~flow
        ~transmit:(fun pkt ->
          match !cell with
          | Some r -> r.send_out (Codec.encode ~epoch:r.cur_epoch pkt)
          | None -> send_out (Codec.encode ~epoch:0 pkt))
        ()
    in
    let r =
      {
        loop;
        rt;
        tfrc_config = config;
        flow;
        send_out;
        pinned = reply_to <> None;
        peer = reply_to;
        cur_epoch = 0;
        machine = machine0;
        epochs_seen = 0;
        delivered = 0;
        stale = 0;
        ctrl = 0;
        decode_errors = 0;
        post_quiesce = 0;
        tot_received = 0;
        tot_feedbacks = 0;
        closed = false;
        quiesced = false;
      }
    in
    cell := Some r;
    Udp.set_handler udp (fun data src -> handle r data src);
    r

  let machine r = r.machine
  let current_epoch r = r.cur_epoch
  let epochs_seen r = r.epochs_seen
  let closed r = r.closed

  let quiesce r =
    if not r.quiesced then begin
      r.quiesced <- true;
      Tfrc.Tfrc_receiver.stop r.machine
    end

  let delivered r = r.delivered
  let stale_frames r = r.stale
  let ctrl_frames r = r.ctrl
  let decode_errors r = r.decode_errors
  let post_quiesce r = r.post_quiesce

  let packets_received r =
    r.tot_received + Tfrc.Tfrc_receiver.packets_received r.machine

  let feedbacks_sent r =
    r.tot_feedbacks + Tfrc.Tfrc_receiver.feedbacks_sent r.machine
end
