(* Decode failures are observable both as a counter and on the trace
   bus, so --trace/--check cover wire runs. *)
let trace_decode_error rt err =
  let tr = Engine.Runtime.trace rt in
  if Engine.Trace.active tr then
    Engine.Trace.emit tr ~time:(Engine.Runtime.now rt) ~cat:"wire"
      ~name:"decode_error"
      [ ("error", Engine.Trace.Str (Codec.error_to_string err)) ]

type sender = {
  s_machine : Tfrc.Tfrc_sender.t;
  mutable s_decode_errors : int;
}

let sender loop udp ~config ~flow ~dest ?send () =
  let rt = Loop.runtime loop in
  let out =
    match send with
    | Some f -> f
    | None -> fun frame -> Udp.send udp ~dest frame
  in
  let machine =
    Tfrc.Tfrc_sender.create rt ~config ~flow
      ~transmit:(fun pkt -> out (Codec.encode pkt))
      ()
  in
  let t = { s_machine = machine; s_decode_errors = 0 } in
  Udp.set_handler udp (fun data _src ->
      match Codec.decode rt data with
      | Ok { body = Codec.Packet pkt; _ } -> Tfrc.Tfrc_sender.recv machine pkt
      | Ok _ -> (* session control is the Supervisor's business *) ()
      | Error e ->
          t.s_decode_errors <- t.s_decode_errors + 1;
          trace_decode_error rt e);
  t

let start_sender t ~at = Tfrc.Tfrc_sender.start t.s_machine ~at
let stop_sender t = Tfrc.Tfrc_sender.stop t.s_machine
let sender_machine t = t.s_machine
let sender_decode_errors t = t.s_decode_errors

type receiver = {
  r_machine : Tfrc.Tfrc_receiver.t;
  mutable r_decode_errors : int;
}

let receiver loop udp ~config ~flow ?reply_to ?send () =
  let rt = Loop.runtime loop in
  (* Learned from traffic when not pinned: feedback goes back to whoever
     last reached us, so the receiver works without knowing the sender's
     ephemeral port up front. *)
  let peer = ref reply_to in
  let out =
    match send with
    | Some f -> f
    | None -> (
        fun frame ->
          match !peer with
          | Some dest -> Udp.send udp ~dest frame
          | None -> ())
  in
  let machine =
    Tfrc.Tfrc_receiver.create rt ~config ~flow
      ~transmit:(fun pkt -> out (Codec.encode pkt))
      ()
  in
  let t = { r_machine = machine; r_decode_errors = 0 } in
  Udp.set_handler udp (fun data src ->
      match Codec.decode rt data with
      | Ok { body = Codec.Packet pkt; _ } ->
          (* Latest-wins on every validly decoded data frame: a sender
             that restarted on a new ephemeral port gets feedback again
             as soon as its first frame lands. *)
          if reply_to = None then peer := Some src;
          Tfrc.Tfrc_receiver.recv machine pkt
      | Ok { body = Codec.Close; epoch; flow } ->
          (* Graceful teardown: acknowledge to whoever asked. *)
          Udp.send udp ~dest:src
            (Codec.encode_close_ack ~epoch ~flow ~now:(Loop.now loop))
      | Ok { body = Codec.Close_ack; _ } -> ()
      | Error e ->
          t.r_decode_errors <- t.r_decode_errors + 1;
          trace_decode_error rt e);
  t

let stop_receiver t = Tfrc.Tfrc_receiver.stop t.r_machine
let receiver_machine t = t.r_machine
let receiver_decode_errors t = t.r_decode_errors

type demo_result = {
  completed : bool;
  elapsed : float;
  data_sent : int;
  data_received : int;
  feedbacks_sent : int;
  feedbacks_received : int;
  shaper_dropped : int;
  decode_errors : int;
  final_rate : float;
  final_rtt : float;
}

let default_demo_shaper =
  { Shaper.passthrough with delay = 0.002 }

let loopback_demo ~packets ~seed ?config ?(shaper = default_demo_shaper)
    ?(timeout = 30.) () =
  if packets <= 0 then invalid_arg "loopback_demo: packets must be positive";
  let config =
    match config with
    | Some c -> c
    | None -> Tfrc.Tfrc_config.default ~initial_rtt:0.05 ()
  in
  let loop = Loop.create ~mode:`Monotonic () in
  let rt = Loop.runtime loop in
  let snd_udp = Udp.create loop () in
  let rcv_udp = Udp.create loop () in
  let snd_addr = Udp.addr ~port:(Udp.port snd_udp) in
  let rcv_addr = Udp.addr ~port:(Udp.port rcv_udp) in
  (* Both directions go socket-to-socket through a seeded shaper: frames
     are delayed/dropped in process, then put on the real wire. *)
  let data_shaper =
    Shaper.create rt ~seed ~config:shaper
      ~deliver:(fun frame -> Udp.send snd_udp ~dest:rcv_addr frame)
      ()
  in
  let fb_shaper =
    Shaper.create rt ~seed:(seed + 1) ~config:shaper
      ~deliver:(fun frame -> Udp.send rcv_udp ~dest:snd_addr frame)
      ()
  in
  let snd =
    sender loop snd_udp ~config ~flow:1 ~dest:rcv_addr
      ~send:(Shaper.send data_shaper) ()
  in
  let rcv =
    receiver loop rcv_udp ~config ~flow:1 ~send:(Shaper.send fb_shaper) ()
  in
  start_sender snd ~at:(Loop.now loop);
  (* Completion poll: cheap enough at 5 ms to keep demo latency low
     without watching every arrival. *)
  let done_ = ref false in
  let rec check () =
    if Tfrc.Tfrc_receiver.packets_received (receiver_machine rcv) >= packets
    then begin
      done_ := true;
      Loop.stop loop
    end
    else ignore (Loop.after loop 0.005 check)
  in
  ignore (Loop.after loop 0.005 check);
  Loop.run loop ~until:timeout;
  let elapsed = Loop.now loop in
  stop_sender snd;
  stop_receiver rcv;
  let sm = sender_machine snd and rm = receiver_machine rcv in
  let result =
    {
      completed = !done_;
      elapsed;
      data_sent = Tfrc.Tfrc_sender.packets_sent sm;
      data_received = Tfrc.Tfrc_receiver.packets_received rm;
      feedbacks_sent = Tfrc.Tfrc_receiver.feedbacks_sent rm;
      feedbacks_received = Tfrc.Tfrc_sender.feedbacks_received sm;
      shaper_dropped = Shaper.dropped data_shaper + Shaper.dropped fb_shaper;
      decode_errors = sender_decode_errors snd + receiver_decode_errors rcv;
      final_rate = Tfrc.Tfrc_sender.rate sm;
      final_rtt = Tfrc.Tfrc_sender.rtt sm;
    }
  in
  Udp.close snd_udp;
  Udp.close rcv_udp;
  result

let pp_demo_result ppf r =
  Format.fprintf ppf
    "@[<v>completed:          %b@,elapsed:            %.3f s@,\
     data sent:          %d@,data received:      %d@,\
     feedbacks sent:     %d@,feedbacks received: %d@,\
     shaper drops:       %d@,decode errors:      %d@,\
     final rate:         %.0f B/s@,final rtt:          %.4f s@]"
    r.completed r.elapsed r.data_sent r.data_received r.feedbacks_sent
    r.feedbacks_received r.shaper_dropped r.decode_errors r.final_rate
    r.final_rtt
