type t = { origin : float; mutable last : float }

let create () = { origin = Unix.gettimeofday (); last = 0. }

let now t =
  let elapsed = Unix.gettimeofday () -. t.origin in
  (* Clamp: gettimeofday may step backwards; reporting a decreasing time
     would make Runtime.at reject timers the protocol just computed. *)
  if elapsed > t.last then t.last <- elapsed;
  t.last
