(** In-process netem-style traffic shaper: deterministic seeded loss,
    delay, jitter and reordering for loopback experiments.

    Polymorphic in what it carries and in where time comes from — the
    sim-vs-wire differential runs one shaper over {!Netsim.Packet}
    records on a simulator runtime and another over encoded datagrams on
    a warp loop, with identical seeds drawing identical RNG streams, so
    the two paths shape traffic identically.

    Draw-count discipline: a parameter set to zero draws nothing from the
    RNG, and an all-zero configuration schedules delivery via
    [Runtime.after 0.] — same (time, insertion-sequence) position a
    direct handler call would get from the scheduler, and zero RNG
    consumption. That is what makes a zero-config shaper transparent to
    the byte-identity checks. *)

type config = {
  loss : float;  (** drop probability, [0, 1] *)
  delay : float;  (** base one-way delay, seconds *)
  jitter : float;  (** extra delay, uniform in [0, jitter) *)
  reorder : float;
      (** probability a packet skips the base delay (keeping only its
          jitter), overtaking in-flight predecessors — netem's
          send-immediately reorder model *)
}

(** All-zero: deliver in order, next scheduler turn, no RNG draws. *)
val passthrough : config

type 'a t

(** [create rt ~seed ?config ~deliver ()] validates [config]
    (probabilities in [0, 1]; delays finite, non-negative;
    [Invalid_argument] otherwise; default {!passthrough}) and routes each
    {!send} through [rt]'s timers to [deliver]. *)
val create :
  Engine.Runtime.t ->
  seed:int ->
  ?config:config ->
  deliver:('a -> unit) ->
  unit ->
  'a t

val send : 'a t -> 'a -> unit

(** Counters: everything offered, those dropped by [loss], and those that
    took the reorder fast path. *)
val sent : 'a t -> int

val dropped : 'a t -> int
val reordered : 'a t -> int
