type t = {
  sendto : Unix.file_descr -> Bytes.t -> int -> int -> Unix.sockaddr -> int;
  recvfrom : Unix.file_descr -> Bytes.t -> int -> int -> int * Unix.sockaddr;
  close : Unix.file_descr -> unit;
  inflight : int ref;
}

let unix () =
  let inflight = ref 0 in
  {
    sendto =
      (fun fd b pos len dest ->
        let n = Unix.sendto fd b pos len [] dest in
        incr inflight;
        n);
    recvfrom =
      (fun fd b pos len ->
        let r = Unix.recvfrom fd b pos len [] in
        (* A pair socket receives what its peer sent, so this counter can
           go negative; only the per-loop sum is meaningful. *)
        decr inflight;
        r);
    close = Unix.close;
    inflight;
  }
