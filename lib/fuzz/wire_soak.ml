type config = {
  cases : int;
  seed : int;
  j : int;
  mutate : bool;
  artifacts : string option;
}

type case_failure = {
  key : string;
  oracles : string list;
  summary : string;
  bundle_path : string option;
}

type summary = {
  total : int;
  passed : int;
  failed : int;
  failures : case_failure list;
  events : int;
  delivered : int;
  injected : int;
}

let oracle_names =
  [
    "no-crash";
    "sup-legal";
    "invariants";
    "recovery";
    "conservation";
    "io-health";
    "busy-loop";
    "determinism";
  ]

let case_key i = Printf.sprintf "soak/%04d" i

(* ------------------------------------------------------------------ *)
(* Case generation                                                     *)

type kind = Steady | Death | Close

let kind_name = function
  | Steady -> "steady"
  | Death -> "death"
  | Close -> "close"

type case = {
  id : string;
  sub_seed : int;  (* drives shapers, fault streams, backoff jitter *)
  kind : kind;
  fault_end : float;  (* all timed fault windows end by here *)
  duration : float;  (* fault_end + recovery window *)
  close_at : float;  (* Close kind: when the sender starts teardown *)
  t_mbi : float;
  app_limit : float;
  shaper : Wire.Shaper.config;
  snd_plan : Wire.Faultio.plan;  (* sender socket: data sends, feedback pulls *)
  rcv_plan : Wire.Faultio.plan;  (* receiver socket: feedback sends, data pulls *)
}

(* Low-probability background syscall noise. Per-side fate probabilities
   stay well under 1 and exclude persistent hard errnos: hard failures
   come only from timed blackout windows, so they are guaranteed to
   clear and the recovery oracle can demand re-establishment. *)
let gen_noise rng =
  let maybe p bound =
    if Engine.Rng.bool rng ~p then Engine.Rng.float rng bound else 0.
  in
  {
    Wire.Faultio.no_faults with
    send_eagain = maybe 0.5 0.05;
    send_enobufs = maybe 0.3 0.03;
    send_eintr = maybe 0.5 0.05;
    send_refused = maybe 0.3 0.03;
    recv_drop = maybe 0.5 0.05;
    recv_truncate = maybe 0.5 0.05;
    recv_eintr = maybe 0.5 0.05;
    recv_refused = maybe 0.3 0.03;
  }

let generate ~id rng =
  let sub_seed = Engine.Rng.int rng 1_000_000 in
  let kind =
    let d = Engine.Rng.float rng 1. in
    if d < 0.45 then Death else if d < 0.65 then Close else Steady
  in
  let t_mbi = 0.25 +. Engine.Rng.float rng 0.25 in
  let app_limit = 4_000. +. Engine.Rng.float rng 12_000. in
  let shaper =
    {
      Wire.Shaper.loss =
        (if Engine.Rng.bool rng ~p:0.5 then Engine.Rng.float rng 0.15 else 0.);
      delay = 0.002 +. Engine.Rng.float rng 0.01;
      jitter = Engine.Rng.float rng 0.005;
      reorder = 0.;
    }
  in
  let snd_plan = gen_noise rng in
  let rcv_plan = gen_noise rng in
  let t0 = 0.5 +. Engine.Rng.float rng 1.0 in
  let snd_plan, fault_end =
    match kind with
    | Death ->
        (* A send blackout long enough that the no-feedback machinery
           demonstrably halves to the floor and the supervisor declares
           the peer dead at least once: halving to min_rate takes at
           most ~initial_nofb + 6 * t_mbi, then dead_expiries more. *)
        let t1 = t0 +. 5.5 +. Engine.Rng.float rng 2.5 in
        ({ snd_plan with Wire.Faultio.send_blackout = Some (t0, t1) }, t1)
    | Steady | Close ->
        (* A short receiver-side delivery blackout: data frames pulled
           in the window are discarded at the syscall boundary. *)
        let t1 = t0 +. 0.5 +. Engine.Rng.float rng 0.5 in
        (snd_plan, t1)
  in
  let rcv_plan =
    match kind with
    | Steady | Close ->
        { rcv_plan with Wire.Faultio.recv_blackout = Some (t0, fault_end) }
    | Death -> rcv_plan
  in
  let close_at = fault_end +. 3.0 in
  let duration = fault_end +. 6.0 in
  {
    id;
    sub_seed;
    kind;
    fault_end;
    duration;
    close_at;
    t_mbi;
    app_limit;
    shaper;
    snd_plan;
    rcv_plan;
  }

let case_summary c =
  Printf.sprintf
    "%s kind=%s dur=%.1f fault_end=%.1f t_mbi=%.2f app=%.0f loss=%.2f \
     delay=%.3f sub_seed=%d"
    c.id (kind_name c.kind) c.duration c.fault_end c.t_mbi c.app_limit
    c.shaper.Wire.Shaper.loss c.shaper.Wire.Shaper.delay c.sub_seed

(* ------------------------------------------------------------------ *)
(* One execution                                                       *)

type verdict = { oracle : string; detail : string }

type run_stats = {
  r_failures : verdict list;
  r_events : int;
  r_delivered : int;
  r_injected : int;
  r_digest : int;
  r_counters : string;
  r_tail : string list;
}

let fnv_prime = 0x100000001b3
let fnv_offset = 0x811c9dc5

(* Supervisor thresholds tuned for soak time scales: quick health
   sampling, short bounded backoff so several death/restart cycles fit
   in one fault window. *)
let soak_sup =
  {
    Wire.Supervisor.default_config with
    backoff_base = 0.25;
    backoff_max = 2.;
    close_timeout = 0.5;
    health_period = 0.05;
  }

let run_once ~mutate (c : case) =
  let bus = Engine.Trace.create ~ring:40 () in
  let checker = Tfrc.Invariants.create () in
  Tfrc.Invariants.attach checker bus;
  let digest = ref fnv_offset in
  let mix s =
    String.iter (fun ch -> digest := (!digest lxor Char.code ch) * fnv_prime) s
  in
  Engine.Trace.add_sink bus
    {
      Engine.Trace.emit = (fun ev -> mix (Engine.Trace.to_json ev));
      close = ignore;
    };
  let loop = Wire.Loop.create ~trace:bus ~mode:`Warp () in
  let rt = Wire.Loop.runtime loop in
  let snd_fio =
    Wire.Faultio.wrap rt ~seed:c.sub_seed ~plan:c.snd_plan (Wire.Netio.unix ())
  in
  let rcv_fio =
    Wire.Faultio.wrap rt ~seed:(c.sub_seed + 1) ~plan:c.rcv_plan
      (Wire.Netio.unix ())
  in
  let snd_udp = Wire.Udp.create loop ~netio:(Wire.Faultio.netio snd_fio) () in
  let rcv_udp = Wire.Udp.create loop ~netio:(Wire.Faultio.netio rcv_fio) () in
  Fun.protect
    ~finally:(fun () ->
      Wire.Udp.close snd_udp;
      Wire.Udp.close rcv_udp)
  @@ fun () ->
  let snd_addr = Wire.Udp.addr ~port:(Wire.Udp.port snd_udp) in
  let rcv_addr = Wire.Udp.addr ~port:(Wire.Udp.port rcv_udp) in
  (* Every frame (data and control, both directions) goes through a
     shaper, so each socket send happens in its own timer callback —
     that is what keeps cross-socket trace interleaving deterministic
     under the warp settle. [data_out]/[fb_out] count frames the shaper
     actually handed to the send path (sent minus dropped minus still
     in flight at the end). *)
  let data_out = ref 0 and fb_out = ref 0 in
  let data_shaper =
    Wire.Shaper.create rt ~seed:(c.sub_seed + 2) ~config:c.shaper
      ~deliver:(fun frame ->
        incr data_out;
        Wire.Udp.send snd_udp ~dest:rcv_addr frame)
      ()
  in
  let fb_shaper =
    Wire.Shaper.create rt ~seed:(c.sub_seed + 3) ~config:c.shaper
      ~deliver:(fun frame ->
        incr fb_out;
        Wire.Udp.send rcv_udp ~dest:snd_addr frame)
      ()
  in
  let tfrc_config =
    Tfrc.Tfrc_config.default ~initial_rtt:0.05 ~min_rate:500. ~t_mbi:c.t_mbi
      ~initial_nofb_timeout:(2. *. c.t_mbi) ()
  in
  let sup =
    Wire.Supervisor.create loop snd_udp ~config:tfrc_config ~sup:soak_sup
      ~flow:1 ~dest:rcv_addr
      ~send:(Wire.Shaper.send data_shaper)
      ~seed:(c.sub_seed + 4) ~mutate ()
  in
  let rcv =
    Wire.Supervisor.Receiver.create loop rcv_udp ~config:tfrc_config ~flow:1
      ~send:(Wire.Shaper.send fb_shaper)
      ()
  in
  Tfrc.Tfrc_sender.set_app_limit
    (Wire.Supervisor.machine sup)
    (Some c.app_limit);
  Wire.Supervisor.start sup ~at:0.;
  if c.kind = Close then
    ignore
      (Wire.Loop.after loop c.close_at (fun () -> Wire.Supervisor.close sup));
  let crash =
    try
      Wire.Loop.run loop ~until:c.duration;
      None
    with e -> Some { oracle = "no-crash"; detail = Printexc.to_string e }
  in
  (* Finalize: freeze both endpoints, then flush the shapers' in-flight
     frames and the kernel's in-flight datagrams so the counter chains
     close. Frames arriving after the freeze land in post_quiesce. *)
  Wire.Supervisor.quiesce sup;
  Wire.Supervisor.Receiver.quiesce rcv;
  let grace =
    c.duration +. c.shaper.Wire.Shaper.delay +. c.shaper.Wire.Shaper.jitter
    +. 0.05
  in
  let crash =
    match crash with
    | Some _ -> crash
    | None -> (
        try
          Wire.Loop.run loop ~until:grace;
          Wire.Loop.settle_io loop;
          None
        with e -> Some { oracle = "no-crash"; detail = Printexc.to_string e })
  in
  let giveups = Wire.Loop.io_giveups loop in
  let st = Wire.Supervisor.state sup in
  let transitions = Wire.Supervisor.transitions sup in
  let recovery_failures =
    let established_after =
      st = Wire.Supervisor.Established
      || List.exists
           (fun (time, from, to_) ->
             time > c.fault_end
             && (to_ = Wire.Supervisor.Established
                || from = Wire.Supervisor.Established))
           transitions
    in
    let fail detail = [ { oracle = "recovery"; detail } ] in
    let progress = Wire.Supervisor.Receiver.packets_received rcv in
    if progress = 0 then fail "no data packet ever reached the receiver"
    else
      match c.kind with
      | Close ->
          if st <> Wire.Supervisor.Closed then
            fail
              (Printf.sprintf "graceful close ended in %s, not closed"
                 (Wire.Supervisor.state_name st))
          else []
      | Death ->
          if Wire.Supervisor.restarts sup < 1 || Wire.Supervisor.epoch sup < 2
          then
            fail
              (Printf.sprintf
                 "death case never restarted (restarts=%d epoch=%d)"
                 (Wire.Supervisor.restarts sup)
                 (Wire.Supervisor.epoch sup))
          else if not established_after then
            fail
              (Printf.sprintf
                 "not re-established after faults cleared at %.1f (final \
                  state %s)"
                 c.fault_end
                 (Wire.Supervisor.state_name st))
          else []
      | Steady ->
          if not established_after then
            fail
              (Printf.sprintf
                 "not established after faults cleared at %.1f (final state \
                  %s)"
                 c.fault_end
                 (Wire.Supervisor.state_name st))
          else []
  in
  (* Counter chains. Each is exact once the kernel and shapers drained;
     a settle give-up means the kernel lost a datagram under us, which
     io-health reports separately (and makes the cross-kernel links
     unreliable, so they are skipped). *)
  let conservation_failures =
    let errs = ref [] in
    let check name lhs rhs =
      if lhs <> rhs then
        errs :=
          {
            oracle = "conservation";
            detail = Printf.sprintf "%s: %d <> %d" name lhs rhs;
          }
          :: !errs
    in
    let checkge name lhs rhs =
      if lhs < rhs then
        errs :=
          {
            oracle = "conservation";
            detail = Printf.sprintf "%s: %d < %d" name lhs rhs;
          }
          :: !errs
    in
    (* shaper output lands in exactly one send bucket *)
    check "data: shaper-out = tx + drops + errors" !data_out
      (Wire.Udp.datagrams_sent snd_udp
      + Wire.Udp.send_drops snd_udp
      + Wire.Udp.send_errors snd_udp);
    check "fb: shaper-out = tx + drops + errors" !fb_out
      (Wire.Udp.datagrams_sent rcv_udp
      + Wire.Udp.send_drops rcv_udp
      + Wire.Udp.send_errors rcv_udp);
    (* shaper residue (still in flight when the run ended) is never
       negative *)
    checkge "data: shaper sent >= dropped + out"
      (Wire.Shaper.sent data_shaper)
      (Wire.Shaper.dropped data_shaper + !data_out);
    checkge "fb: shaper sent >= dropped + out"
      (Wire.Shaper.sent fb_shaper)
      (Wire.Shaper.dropped fb_shaper + !fb_out);
    if giveups = 0 then begin
      (* every datagram handed to the kernel was pulled by the peer *)
      check "data: tx = peer pulls"
        (Wire.Udp.datagrams_sent snd_udp)
        (Wire.Faultio.pulled rcv_fio);
      check "fb: tx = peer pulls"
        (Wire.Udp.datagrams_sent rcv_udp)
        (Wire.Faultio.pulled snd_fio)
    end;
    (* every pulled datagram was a fault drop or reached the handler *)
    check "data: pulls = fault drops + rx"
      (Wire.Faultio.pulled rcv_fio)
      (Wire.Faultio.drops rcv_fio + Wire.Udp.datagrams_received rcv_udp);
    check "fb: pulls = fault drops + rx"
      (Wire.Faultio.pulled snd_fio)
      (Wire.Faultio.drops snd_fio + Wire.Udp.datagrams_received snd_udp);
    (* every handled datagram decoded into exactly one bucket *)
    check "data: rx = delivered + stale + ctrl + post_quiesce + decode_errors"
      (Wire.Udp.datagrams_received rcv_udp)
      (Wire.Supervisor.Receiver.delivered rcv
      + Wire.Supervisor.Receiver.stale_frames rcv
      + Wire.Supervisor.Receiver.ctrl_frames rcv
      + Wire.Supervisor.Receiver.post_quiesce rcv
      + Wire.Supervisor.Receiver.decode_errors rcv);
    check "fb: rx = feedback + stale + ctrl + post_quiesce + decode_errors"
      (Wire.Udp.datagrams_received snd_udp)
      (Wire.Supervisor.feedback_delivered sup
      + Wire.Supervisor.stale_frames sup
      + Wire.Supervisor.ctrl_frames sup
      + Wire.Supervisor.post_quiesce sup
      + Wire.Supervisor.decode_errors sup);
    List.rev !errs
  in
  let io_failures =
    if giveups = 0 then []
    else
      [
        {
          oracle = "io-health";
          detail =
            Printf.sprintf "warp settle gave up on %d datagram(s)" giveups;
        };
      ]
  in
  let busy_failures =
    let polls = Wire.Loop.polls loop and fired = Wire.Loop.fired loop in
    let bound = 2_000 + (20 * fired) + (300 * giveups) in
    if polls > bound then
      [
        {
          oracle = "busy-loop";
          detail =
            Printf.sprintf "%d select calls for %d timer fires (bound %d)"
              polls fired bound;
        };
      ]
    else if fired > 500_000 then
      [
        {
          oracle = "busy-loop";
          detail = Printf.sprintf "%d timer fires — runaway timer loop" fired;
        };
      ]
    else []
  in
  let sup_failures, inv_failures =
    if Tfrc.Invariants.ok checker then ([], [])
    else begin
      let all = Tfrc.Invariants.violations checker in
      let sup_v, other =
        List.partition
          (fun (v : Tfrc.Invariants.violation) -> v.rule = "wire-sup-legal")
          all
      in
      let render oracle = function
        | [] -> []
        | vs ->
            let shown = List.filteri (fun i _ -> i < 3) vs in
            [
              {
                oracle;
                detail =
                  Printf.sprintf "%d violation(s): %s" (List.length vs)
                    (String.concat " | "
                       (List.map
                          (fun (v : Tfrc.Invariants.violation) ->
                            Printf.sprintf "[%.4f] %s: %s" v.time v.rule
                              v.detail)
                          shown));
              };
            ]
      in
      (render "sup-legal" sup_v, render "invariants" other)
    end
  in
  let injected = Wire.Faultio.injected snd_fio + Wire.Faultio.injected rcv_fio in
  let delivered = Wire.Supervisor.Receiver.packets_received rcv in
  let counters =
    Printf.sprintf
      "st=%s restarts=%d epoch=%d trans=%d fb=%d stale=%d/%d ctrl=%d/%d \
       dec=%d/%d pq=%d/%d sent=%d recv=%d fbs=%d sh=%d/%d,%d/%d out=%d/%d \
       tx=%d/%d txd=%d/%d txe=%d/%d rx=%d/%d pulls=%d/%d fdrop=%d/%d \
       trunc=%d/%d inj=%d"
      (Wire.Supervisor.state_name st)
      (Wire.Supervisor.restarts sup)
      (Wire.Supervisor.epoch sup)
      (List.length transitions)
      (Wire.Supervisor.feedback_delivered sup)
      (Wire.Supervisor.stale_frames sup)
      (Wire.Supervisor.Receiver.stale_frames rcv)
      (Wire.Supervisor.ctrl_frames sup)
      (Wire.Supervisor.Receiver.ctrl_frames rcv)
      (Wire.Supervisor.decode_errors sup)
      (Wire.Supervisor.Receiver.decode_errors rcv)
      (Wire.Supervisor.post_quiesce sup)
      (Wire.Supervisor.Receiver.post_quiesce rcv)
      (Wire.Supervisor.data_packets_sent sup)
      delivered
      (Wire.Supervisor.Receiver.feedbacks_sent rcv)
      (Wire.Shaper.sent data_shaper)
      (Wire.Shaper.dropped data_shaper)
      (Wire.Shaper.sent fb_shaper)
      (Wire.Shaper.dropped fb_shaper)
      !data_out !fb_out
      (Wire.Udp.datagrams_sent snd_udp)
      (Wire.Udp.datagrams_sent rcv_udp)
      (Wire.Udp.send_drops snd_udp)
      (Wire.Udp.send_drops rcv_udp)
      (Wire.Udp.send_errors snd_udp)
      (Wire.Udp.send_errors rcv_udp)
      (Wire.Udp.datagrams_received snd_udp)
      (Wire.Udp.datagrams_received rcv_udp)
      (Wire.Faultio.pulled snd_fio)
      (Wire.Faultio.pulled rcv_fio)
      (Wire.Faultio.drops snd_fio)
      (Wire.Faultio.drops rcv_fio)
      (Wire.Faultio.truncated snd_fio)
      (Wire.Faultio.truncated rcv_fio)
      injected
  in
  let failures =
    (match crash with Some v -> [ v ] | None -> [])
    @ sup_failures @ inv_failures @ recovery_failures @ conservation_failures
    @ io_failures @ busy_failures
  in
  {
    r_failures = failures;
    r_events = Engine.Trace.emitted bus;
    r_delivered = delivered;
    r_injected = injected;
    r_digest = !digest;
    r_counters = counters;
    r_tail = List.map Engine.Trace.to_json (Engine.Trace.recent bus);
  }

type outcome = {
  failures : verdict list;
  events : int;
  delivered : int;
  injected : int;
  counters : string;
  tail : string list;
}

(* Run twice: the virtual-time schedule, fault draws and counter chains
   must replay identically even though the kernel's real-time delivery
   of loopback datagrams differs between runs. *)
let run_case ~mutate c =
  let a = run_once ~mutate c in
  let b = run_once ~mutate c in
  let determinism =
    if
      a.r_digest = b.r_digest && a.r_events = b.r_events
      && a.r_counters = b.r_counters
    then []
    else
      [
        {
          oracle = "determinism";
          detail =
            Printf.sprintf
              "run A: %d events, digest %x, {%s}; run B: %d events, digest \
               %x, {%s}"
              a.r_events a.r_digest a.r_counters b.r_events b.r_digest
              b.r_counters;
        };
      ]
  in
  {
    failures = a.r_failures @ determinism;
    events = a.r_events;
    delivered = a.r_delivered;
    injected = a.r_injected;
    counters = a.r_counters;
    tail = a.r_tail;
  }

let failed_oracles failures =
  List.fold_left
    (fun acc v -> if List.mem v.oracle acc then acc else acc @ [ v.oracle ])
    [] failures

(* ------------------------------------------------------------------ *)
(* Repro bundles                                                       *)

let bundle_filename key =
  String.map (fun ch -> if ch = '/' then '-' else ch) key ^ ".soak"

let bundle_sexp ~key ~index ~seed ~mutate ~oracles ~details ~summary ~counters
    =
  Sexp.List
    [
      Sexp.Atom "wire-soak-bundle";
      Sexp.List [ Sexp.Atom "case"; Sexp.Atom key ];
      Sexp.List [ Sexp.Atom "index"; Sexp.Atom (string_of_int index) ];
      Sexp.List [ Sexp.Atom "seed"; Sexp.Atom (string_of_int seed) ];
      Sexp.List [ Sexp.Atom "mutate"; Sexp.Atom (string_of_bool mutate) ];
      Sexp.List
        [
          Sexp.Atom "oracles";
          Sexp.List (List.map (fun o -> Sexp.Atom o) oracles);
        ];
      Sexp.List
        [
          Sexp.Atom "details";
          Sexp.List (List.map (fun d -> Sexp.Atom d) details);
        ];
      Sexp.List [ Sexp.Atom "summary"; Sexp.Atom summary ];
      Sexp.List [ Sexp.Atom "counters"; Sexp.Atom counters ];
    ]

let save_bundle ~dir sx key =
  Exp.Checkpoint.ensure_dir dir;
  let path = Filename.concat dir (bundle_filename key) in
  (match open_out_bin path with
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Sexp.to_string_hum sx))
  | exception Sys_error msg ->
      failwith (Printf.sprintf "cannot write soak bundle %s: %s" path msg));
  path

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let case_job ~mutate i =
  let key = case_key i in
  Exp.Job.make key (fun rng ->
      let c = generate ~id:key rng in
      let o = run_case ~mutate c in
      [
        ("ok", Exp.Job.b (o.failures = []));
        ("oracles", Exp.Job.strs (failed_oracles o.failures));
        ( "details",
          Exp.Job.strs (List.map (fun v -> v.detail) o.failures) );
        ("events", Exp.Job.i o.events);
        ("delivered", Exp.Job.i o.delivered);
        ("injected", Exp.Job.i o.injected);
        ("summary", Exp.Job.s (case_summary c));
        ("counters", Exp.Job.s o.counters);
        ("tail", Exp.Job.strs o.tail);
      ])

let run ~out cfg =
  (* No worker count, no wall clock: stdout must be byte-identical at
     any -j, so CI can diff parallel against sequential runs. *)
  Format.fprintf out "wire soak: %d cases, seed %d%s@." cfg.cases cfg.seed
    (if cfg.mutate then ", mutate (self-test)" else "");
  let jobs = List.init cfg.cases (case_job ~mutate:cfg.mutate) in
  let outcomes, _report =
    Exp.Runner.run_jobs_supervised ~j:cfg.j ~seed:cfg.seed jobs
  in
  let events = ref 0 and delivered = ref 0 and injected = ref 0 in
  let index_of key = Scanf.sscanf key "soak/%d" (fun i -> i) in
  let failures =
    List.filter_map
      (fun (key, outcome) ->
        match outcome with
        | Exp.Runner.Completed r when Exp.Job.get_bool r "ok" ->
            events := !events + Exp.Job.get_int r "events";
            delivered := !delivered + Exp.Job.get_int r "delivered";
            injected := !injected + Exp.Job.get_int r "injected";
            None
        | Exp.Runner.Completed r ->
            events := !events + Exp.Job.get_int r "events";
            delivered := !delivered + Exp.Job.get_int r "delivered";
            injected := !injected + Exp.Job.get_int r "injected";
            let oracles = Exp.Job.get_strs r "oracles" in
            let details = Exp.Job.get_strs r "details" in
            let summary = Exp.Job.get_str r "summary" in
            Format.fprintf out "%s FAIL [%s] %s@." key
              (String.concat ", " oracles)
              summary;
            List.iter (fun d -> Format.fprintf out "  %s@." d) details;
            let bundle_path =
              match cfg.artifacts with
              | None -> None
              | Some dir ->
                  let sx =
                    bundle_sexp ~key ~index:(index_of key) ~seed:cfg.seed
                      ~mutate:cfg.mutate ~oracles ~details ~summary
                      ~counters:(Exp.Job.get_str r "counters")
                  in
                  let path = save_bundle ~dir sx key in
                  Format.fprintf out "  bundle: %s@." path;
                  Some path
            in
            Some { key; oracles; summary; bundle_path }
        | Exp.Runner.Gave_up f ->
            Format.fprintf out "%s FAIL [harness] %s@." key
              (Exp.Runner.failure_summary f);
            Some
              {
                key;
                oracles = [ "harness" ];
                summary = "";
                bundle_path = None;
              })
      outcomes
  in
  let failed = List.length failures in
  let summary =
    {
      total = cfg.cases;
      passed = cfg.cases - failed;
      failed;
      failures;
      events = !events;
      delivered = !delivered;
      injected = !injected;
    }
  in
  Format.fprintf out
    "wire soak: %d/%d passed, %d failed (%d trace events, %d data packets \
     delivered, %d faults injected)@."
    summary.passed summary.total summary.failed summary.events
    summary.delivered summary.injected;
  summary

let mutate_ok s =
  s.failed > 0
  && List.for_all (fun f -> f.oracles = [ "sup-legal" ]) s.failures

let replay ~out path =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let sx = Sexp.of_string contents in
  (match sx with
  | Sexp.List (Sexp.Atom "wire-soak-bundle" :: _) -> ()
  | _ -> failwith (path ^ ": not a wire-soak bundle"));
  let key = Sexp.atom_field "case" sx in
  let seed = Sexp.int_field "seed" sx in
  let mutate = bool_of_string (Sexp.atom_field "mutate" sx) in
  let recorded =
    List.map
      (function Sexp.Atom a -> a | _ -> failwith "malformed oracles")
      (Sexp.list_field "oracles" sx)
  in
  let c = generate ~id:key (Engine.Rng.for_key ~seed key) in
  Format.fprintf out "replay %s: %s@." key (case_summary c);
  Format.fprintf out "recorded verdict: [%s]@."
    (String.concat ", " recorded);
  let o = run_case ~mutate c in
  let fresh = failed_oracles o.failures in
  Format.fprintf out "replayed verdict: [%s]@." (String.concat ", " fresh);
  List.iter
    (fun v -> Format.fprintf out "  %s: %s@." v.oracle v.detail)
    o.failures;
  let matches = List.sort compare fresh = List.sort compare recorded in
  Format.fprintf out
    (if matches then "verdict reproduced@."
     else
       "VERDICT MISMATCH: the bundle does not replay to its recorded \
        verdict@.");
  matches
