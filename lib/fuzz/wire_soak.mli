(** Wire-mode chaos soak: seeded syscall-fault endurance runs over real
    loopback sockets.

    Each case stands up a supervised TFRC sender and a managed receiver
    ({!Wire.Supervisor}) on two UDP sockets whose syscalls go through
    {!Wire.Faultio} (EAGAIN/ENOBUFS bursts, EINTR storms, ECONNREFUSED
    replays, hard-errno blackouts, truncated deliveries) with a seeded
    {!Wire.Shaper} in each direction, drives the whole session on a
    [`Warp] loop for a fault window plus a recovery window, and judges
    the run with wire oracles:

    - [no-crash] — nothing unwinds out of the loop;
    - [sup-legal] — every supervisor lifecycle transition is a legal
      edge (the {!Tfrc.Invariants} [wire-sup-legal] rule);
    - [invariants] — no other RFC 3448 invariant violation;
    - [recovery] — data flowed, and the session was [Established] at or
      after the end of the fault window ([Closed], for graceful-close
      cases); death cases must additionally have restarted at least once
      on a fresh epoch;
    - [conservation] — per direction, exact counter chains: every frame
      offered to the shaper is dropped there, still in flight, or landed
      in exactly one send bucket; every datagram the kernel delivered is
      a fault-layer drop or was decoded into exactly one receive bucket;
    - [io-health] — the warp settle never gave a datagram up for lost;
    - [busy-loop] — [select] calls are bounded by work done;
    - [determinism] — the case runs twice and must produce an identical
      trace digest, event count and counter snapshot.

    Everything printed by {!run} is a pure function of the config — no
    worker count, no wall clock — so [-j N] output is byte-identical to
    [-j 1]. *)

type config = {
  cases : int;
  seed : int;
  j : int;  (** worker domains *)
  mutate : bool;
      (** plant the known supervisor bug — a dead peer restarts
          immediately, skipping [Backoff] — as a self-test that the
          [sup-legal] oracle catches illegal lifecycle edges *)
  artifacts : string option;  (** where to write repro bundles *)
}

type case_failure = {
  key : string;
  oracles : string list;  (** failing oracle names *)
  summary : string;  (** the case's one-line description *)
  bundle_path : string option;
}

type summary = {
  total : int;
  passed : int;
  failed : int;
  failures : case_failure list;
  events : int;  (** trace events across all cases (first runs) *)
  delivered : int;  (** data packets delivered across all cases *)
  injected : int;  (** syscall faults injected across all cases *)
}

(** Stable oracle names, in evaluation order. *)
val oracle_names : string list

(** The stable job key of case [i], e.g. ["soak/0013"]. *)
val case_key : int -> string

(** [run ~out config] soaks and reports; one line per failing case plus
    a totals line. *)
val run : out:Format.formatter -> config -> summary

(** Did the [--mutate] self-test succeed: at least one case tripped the
    [sup-legal] oracle, and no case failed anything else. *)
val mutate_ok : summary -> bool

(** [replay ~out path] loads a repro bundle, regenerates its case from
    the recorded seed, re-runs it, and compares the fresh failing-oracle
    set against the recorded one; [true] iff they match. *)
val replay : out:Format.formatter -> string -> bool
