(** Delta-debugging minimization of a failing scenario.

    Greedy first-improvement descent over {!Scenario.shrink_candidates}:
    a candidate is adopted when {!Oracle.run} (with the same [mutate]
    flag) still fails the {e same} oracle; the walk restarts from the
    adopted candidate and stops at a fixpoint — no candidate still fails
    — or when the run budget is exhausted. Deterministic: candidate
    order is fixed and every run is a pure function of the scenario. *)

type result = {
  scenario : Scenario.t;  (** minimal still-failing scenario found *)
  outcome : Oracle.outcome;  (** the minimal scenario's oracle outcome *)
  steps : int;  (** candidates adopted *)
  runs : int;  (** oracle executions spent *)
}

(** [minimize ?mutate ?max_runs ~oracle sc] shrinks [sc], which must
    currently fail oracle [oracle]. [max_runs] (default 300) bounds the
    total oracle executions. *)
val minimize :
  ?mutate:bool -> ?max_runs:int -> oracle:string -> Scenario.t -> result
