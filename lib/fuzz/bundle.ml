type t = {
  case_key : string;
  fuzz_seed : int;
  mutate : bool;
  oracles : string list;
  details : string list;
  scenario : Scenario.t;
  original : Scenario.t option;
  shrink_steps : int;
  trace_tail : string list;
}

let make ~case_key ~fuzz_seed ~mutate ?original ?(shrink_steps = 0) scenario
    (outcome : Oracle.outcome) =
  {
    case_key;
    fuzz_seed;
    mutate;
    oracles = Oracle.failed_oracles outcome;
    details =
      List.map (fun (v : Oracle.verdict) -> v.detail) outcome.failures;
    scenario;
    original;
    shrink_steps;
    trace_tail = outcome.tail;
  }

let strings_field name l =
  Sexp.List [ Sexp.Atom name; Sexp.List (List.map (fun s -> Sexp.Atom s) l) ]

let to_sexp t =
  Sexp.List
    ([
       Sexp.Atom "repro";
       Sexp.List [ Sexp.Atom "case"; Sexp.Atom t.case_key ];
       Sexp.List [ Sexp.Atom "fuzz-seed"; Sexp.Atom (string_of_int t.fuzz_seed) ];
       Sexp.List [ Sexp.Atom "mutate"; Sexp.Atom (string_of_bool t.mutate) ];
       strings_field "oracles" t.oracles;
       strings_field "details" t.details;
       Sexp.List
         [ Sexp.Atom "shrink-steps"; Sexp.Atom (string_of_int t.shrink_steps) ];
       Sexp.List [ Sexp.Atom "scenario"; Scenario.to_sexp t.scenario ];
     ]
    @ (match t.original with
      | None -> []
      | Some o -> [ Sexp.List [ Sexp.Atom "original"; Scenario.to_sexp o ] ])
    @ [ strings_field "trace-tail" t.trace_tail ])

let atoms name v =
  List.map
    (function
      | Sexp.Atom s -> s
      | l ->
          raise
            (Sexp.Parse_error
               (Printf.sprintf "field %S: expected atom, got %s" name
                  (Sexp.to_string l))))
    (Sexp.list_field name v)

let of_sexp v =
  match v with
  | Sexp.List (Sexp.Atom "repro" :: _) ->
      {
        case_key = Sexp.atom_field "case" v;
        fuzz_seed = Sexp.int_field "fuzz-seed" v;
        mutate = bool_of_string (Sexp.atom_field "mutate" v);
        oracles = atoms "oracles" v;
        details = atoms "details" v;
        scenario = Scenario.of_sexp (Option.get (Sexp.field "scenario" v));
        original =
          Option.map Scenario.of_sexp (Sexp.field "original" v);
        shrink_steps = Sexp.int_field "shrink-steps" v;
        trace_tail = atoms "trace-tail" v;
      }
  | _ ->
      raise
        (Sexp.Parse_error ("expected (repro ...): got " ^ Sexp.to_string v))

let filename ~case_key =
  String.map (fun c -> if c = '/' then '-' else c) case_key ^ ".repro"

let save ~dir t =
  Exp.Checkpoint.ensure_dir dir;
  let path = Filename.concat dir (filename ~case_key:t.case_key) in
  (match open_out_bin path with
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Sexp.to_string_hum (to_sexp t)))
  | exception Sys_error msg ->
      failwith (Printf.sprintf "cannot write repro bundle %s: %s" path msg));
  path

let load path =
  let contents =
    match open_in_bin path with
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
    | exception Sys_error msg ->
        failwith (Printf.sprintf "cannot read repro bundle %s: %s" path msg)
  in
  match of_sexp (Sexp.of_string contents) with
  | t -> t
  | exception Sexp.Parse_error msg ->
      failwith (Printf.sprintf "malformed repro bundle %s: %s" path msg)

let pp ppf t =
  Format.fprintf ppf "@[<v>case %s (fuzz seed %d%s)@," t.case_key t.fuzz_seed
    (if t.mutate then ", mutated" else "");
  Format.fprintf ppf "failed oracles: %s@," (String.concat ", " t.oracles);
  List.iter (fun d -> Format.fprintf ppf "  %s@," d) t.details;
  (match t.original with
  | Some o ->
      Format.fprintf ppf "shrunk in %d step(s) from: %s@," t.shrink_steps
        (Scenario.summary o)
  | None -> ());
  Format.fprintf ppf "scenario: %a@]" Scenario.pp t.scenario
