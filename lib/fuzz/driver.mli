(** The fuzzing coordinator.

    Builds one {!Exp.Job} per case — case [i] generates its scenario
    from the [Rng.for_key (seed, "fuzz/NNNN")] stream and runs it
    through {!Oracle.run} — executes the batch on the supervised runner
    (crash isolation, [-j N] worker domains), then post-processes
    failures sequentially: optional delta-debug shrinking and repro
    bundle emission.

    Everything printed to [out] is a pure function of [(config)] — no
    wall-clock, no machine state — so a run at [-j 4] is byte-identical
    to [-j 1]. *)

type config = {
  cases : int;
  seed : int;
  j : int;  (** worker domains *)
  shrink : bool;  (** delta-debug failing cases to minimal form *)
  mutate : bool;  (** plant the known accounting bug (self-test mode) *)
  artifacts : string option;  (** where to write repro bundles *)
  max_shrink_runs : int;  (** oracle-execution budget per shrink *)
}

type case_failure = {
  key : string;
  oracles : string list;  (** failing oracle names *)
  scenario : Scenario.t;  (** minimal (possibly shrunk) scenario *)
  shrink_steps : int;
  bundle_path : string option;
}

type summary = {
  total : int;
  passed : int;
  failed : int;
  failures : case_failure list;
  events : int;  (** trace events across all cases (first runs) *)
  delivered : int;  (** packets delivered across all cases (first runs) *)
}

(** The stable job key of case [i], e.g. ["fuzz/0013"]. *)
val case_key : int -> string

(** [run ~out config] fuzzes and reports. Prints one line per failing
    case (plus shrink/bundle annotations) and a final totals line. *)
val run : out:Format.formatter -> config -> summary

(** Did the [--mutate] self-test succeed: at least one case tripped the
    queue-conservation oracle, and no case failed anything else. *)
val mutate_ok : summary -> bool

(** [repro ~out bundle] re-runs the bundle's scenario with its recorded
    [mutate] flag and compares the fresh failing-oracle set against the
    recorded one. Prints both verdicts; [true] iff they match. *)
val repro : out:Format.formatter -> Bundle.t -> bool
