type config = {
  cases : int;
  seed : int;
  j : int;
  shrink : bool;
  mutate : bool;
  artifacts : string option;
  max_shrink_runs : int;
}

type case_failure = {
  key : string;
  oracles : string list;
  scenario : Scenario.t;
  shrink_steps : int;
  bundle_path : string option;
}

type summary = {
  total : int;
  passed : int;
  failed : int;
  failures : case_failure list;
  events : int;
  delivered : int;
}

let case_key i = Printf.sprintf "fuzz/%04d" i

(* One case = generate from the job's own RNG stream, run the oracles,
   return a slim serializable result. The coordinator regenerates the
   scenario of a failing case from [Rng.for_key (seed, key)] — the same
   stream the runner handed the job (attempt 0) — so the heavy artifacts
   (scenario, trace tail) never cross the worker boundary twice. *)
let case_job ~mutate i =
  let key = case_key i in
  Exp.Job.make key (fun rng ->
      let sc = Scenario.generate ~id:key rng in
      let o = Oracle.run ~mutate sc in
      [
        ("ok", Exp.Job.b (o.failures = []));
        ("oracles", Exp.Job.strs (Oracle.failed_oracles o));
        ( "details",
          Exp.Job.strs
            (List.map (fun (v : Oracle.verdict) -> v.detail) o.failures) );
        ("events", Exp.Job.i o.events);
        ("delivered", Exp.Job.i o.delivered);
        ("summary", Exp.Job.s (Scenario.summary sc));
        ("tail", Exp.Job.strs o.tail);
      ])

let regenerate ~seed key =
  Scenario.generate ~id:key (Engine.Rng.for_key ~seed key)

let run ~out cfg =
  (* No worker count, no wall clock: stdout must be byte-identical at any
     -j, so CI can diff parallel against sequential runs. *)
  Format.fprintf out "fuzz: %d cases, seed %d%s%s@." cfg.cases cfg.seed
    (if cfg.shrink then ", shrink" else "")
    (if cfg.mutate then ", mutate (self-test)" else "");
  let jobs = List.init cfg.cases (case_job ~mutate:cfg.mutate) in
  let outcomes, _report =
    Exp.Runner.run_jobs_supervised ~j:cfg.j ~seed:cfg.seed jobs
  in
  let events = ref 0 and delivered = ref 0 in
  let failures =
    List.filter_map
      (fun (key, outcome) ->
        match outcome with
        | Exp.Runner.Completed r when Exp.Job.get_bool r "ok" ->
            events := !events + Exp.Job.get_int r "events";
            delivered := !delivered + Exp.Job.get_int r "delivered";
            None
        | Exp.Runner.Completed r ->
            events := !events + Exp.Job.get_int r "events";
            delivered := !delivered + Exp.Job.get_int r "delivered";
            let oracles = Exp.Job.get_strs r "oracles" in
            let details = Exp.Job.get_strs r "details" in
            Format.fprintf out "%s FAIL [%s] %s@." key
              (String.concat ", " oracles)
              (Exp.Job.get_str r "summary");
            List.iter (fun d -> Format.fprintf out "  %s@." d) details;
            let sc = regenerate ~seed:cfg.seed key in
            let minimal, shrink_steps, bundle =
              if cfg.shrink then begin
                (* Shrink against the first failing oracle: the most
                   severe one, by the oracle evaluation order. *)
                let oracle = List.hd oracles in
                let r =
                  Shrink.minimize ~mutate:cfg.mutate
                    ~max_runs:cfg.max_shrink_runs ~oracle sc
                in
                Format.fprintf out "  shrunk in %d step(s), %d run(s): %s@."
                  r.steps r.runs
                  (Scenario.summary r.scenario);
                let original = if r.steps > 0 then Some sc else None in
                ( r.scenario,
                  r.steps,
                  Bundle.make ~case_key:key ~fuzz_seed:cfg.seed
                    ~mutate:cfg.mutate ?original ~shrink_steps:r.steps
                    r.scenario r.outcome )
              end
              else
                ( sc,
                  0,
                  {
                    Bundle.case_key = key;
                    fuzz_seed = cfg.seed;
                    mutate = cfg.mutate;
                    oracles;
                    details;
                    scenario = sc;
                    original = None;
                    shrink_steps = 0;
                    trace_tail = Exp.Job.get_strs r "tail";
                  } )
            in
            let bundle_path =
              match cfg.artifacts with
              | None -> None
              | Some dir ->
                  let path = Bundle.save ~dir bundle in
                  Format.fprintf out "  bundle: %s@." path;
                  Some path
            in
            Some
              { key; oracles; scenario = minimal; shrink_steps; bundle_path }
        | Exp.Runner.Gave_up f ->
            (* The harness itself failed on this cell (scenario
               generation or wiring raised) — report it as a failing
               case, but there is nothing meaningful to shrink. *)
            Format.fprintf out "%s FAIL [harness] %s@." key
              (Exp.Runner.failure_summary f);
            Some
              {
                key;
                oracles = [ "harness" ];
                scenario = regenerate ~seed:cfg.seed key;
                shrink_steps = 0;
                bundle_path = None;
              })
      outcomes
  in
  let failed = List.length failures in
  let summary =
    {
      total = cfg.cases;
      passed = cfg.cases - failed;
      failed;
      failures;
      events = !events;
      delivered = !delivered;
    }
  in
  Format.fprintf out
    "fuzz: %d/%d passed, %d failed (%d trace events, %d packets delivered)@."
    summary.passed summary.total summary.failed summary.events
    summary.delivered;
  summary

let mutate_ok s =
  s.failed > 0
  && List.for_all
       (fun f -> f.oracles = [ "queue-conservation" ])
       s.failures

let repro ~out (b : Bundle.t) =
  Format.fprintf out "repro %s: %s@." b.case_key (Scenario.summary b.scenario);
  Format.fprintf out "recorded verdict: [%s]@." (String.concat ", " b.oracles);
  let o = Oracle.run ~mutate:b.mutate b.scenario in
  let fresh = Oracle.failed_oracles o in
  Format.fprintf out "replayed verdict: [%s]@." (String.concat ", " fresh);
  List.iter
    (fun (v : Oracle.verdict) -> Format.fprintf out "  %s: %s@." v.oracle v.detail)
    o.failures;
  let matches =
    List.sort compare fresh = List.sort compare b.oracles
  in
  Format.fprintf out
    (if matches then "verdict reproduced@."
     else "VERDICT MISMATCH: the bundle does not replay to its recorded \
           verdict@.");
  matches
