(** Fuzzing scenarios: a fully-concrete, serializable description of one
    randomized simulation case.

    A scenario carries {e everything} a run depends on — topology, link
    parameters, queue discipline, flow mix, fault schedule, duration and
    the simulation RNG seed — so replaying the description alone
    reproduces the run bit-for-bit; no side channel back to the fuzzing
    RNG is needed. {!generate} draws each choice from an
    {!Engine.Rng.t} (the fuzzer hands it [Rng.for_key ~seed case_key]
    streams), and the sexp codec round-trips exactly: floats are encoded
    as hex-float ([%h]) atoms. *)

type topology =
  | Path  (** single link, one hop *)
  | Dumbbell  (** shared bottleneck + well-provisioned reverse path *)
  | Parking_lot of int  (** chain of [n >= 2] congested hops *)
  | Graph of { nodes : int; extra : int }
      (** routed {!Netsim.Topology}: [nodes >= 3] routers on a
          bidirectional ring plus [extra] chord links; flow endpoints are
          derived from flow index (see [Oracle.build_net]) *)

type queue =
  | Droptail of int  (** buffer limit, packets *)
  | Red of { min_th : float; max_th : float; limit : int }

type proto = Tfrc | Tcp | Tfrcp | Rap

type flow = {
  proto : proto;
  rtt_base : float;  (** base RTT excluding queueing, seconds *)
  start : float;  (** agent start time, seconds *)
  hop : int option;
      (** [Some h]: cross-flow entering at 1-based hop [h] (parking lot
          only); [None]: end-to-end flow *)
}

type fault =
  | Outage of { at : float; duration : float }
  | Flap of { at : float; stop : float; period : float; down_fraction : float }
  | Route_change of { at : float; bandwidth_factor : float }
  | Reorder of { p : float; jitter : float }
  | Duplicate of { p : float; delay : float }
  | Corrupt of { p : float }
  | Fb_blackout of { at : float; duration : float }

type t = {
  id : string;  (** the case key, e.g. ["fuzz/0013"] *)
  sim_seed : int;  (** seed of the simulation-side RNG *)
  topology : topology;
  bandwidth : float;  (** bits/s, every congested link *)
  delay : float;  (** one-way propagation per congested link, seconds *)
  queue : queue;
  flows : flow list;  (** flow ids are positional: flow [i] has id [i] *)
  faults : fault list;
  duration : float;  (** virtual seconds to simulate *)
}

(** Number of congested hops ([Path] = 1, [Dumbbell] = 1 forward hop). *)
val hops : t -> int

(** Smallest base RTT that clears the topology's propagation constraint
    for an end-to-end flow (access delays must be non-negative). *)
val min_rtt : topology -> delay:float -> float

(** [generate ~id rng] draws a complete scenario. Everything, including
    [sim_seed], comes from [rng], so equal [(id, rng stream)] pairs give
    equal scenarios. *)
val generate : id:string -> Engine.Rng.t -> t

val to_sexp : t -> Sexp.t

(** Raises {!Sexp.Parse_error} on malformed input. *)
val of_sexp : Sexp.t -> t

val pp : Format.formatter -> t -> unit

(** One-line human summary ("dumbbell 2.0Mb/s 3 flows 2 faults 12s"). *)
val summary : t -> string

(** Shrinking candidates, in decreasing order of expected simplification:
    drop all faults, drop each fault, drop each flow (the first flow is
    kept — an empty scenario exercises nothing), halve the duration
    (clamping fault times), simplify the topology (parking lot loses a
    hop, then becomes a dumbbell, then a path), and replace RED with
    DropTail. Candidates preserve well-formedness (RTT floors, fault
    windows inside the run). *)
val shrink_candidates : t -> t list
