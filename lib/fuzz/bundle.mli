(** Replayable repro bundles.

    When a fuzz case fails, the driver saves everything needed to replay
    it — the (possibly shrunk) scenario, the original scenario when
    shrinking changed it, the failing oracle verdicts, and the trace
    tail — as one self-describing sexp file. [tfrc_sim repro BUNDLE]
    loads the file, re-runs the scenario through {!Oracle.run} with the
    recorded [mutate] flag, and compares the fresh verdict against the
    recorded one. *)

type t = {
  case_key : string;  (** the failing case's job key, e.g. ["fuzz/0013"] *)
  fuzz_seed : int;  (** the fuzz run's [--seed], for provenance *)
  mutate : bool;  (** whether the run planted the mutation *)
  oracles : string list;  (** failing oracle names *)
  details : string list;  (** one detail line per failing verdict *)
  scenario : Scenario.t;  (** minimal (possibly shrunk) failing scenario *)
  original : Scenario.t option;
      (** the pre-shrink scenario, when shrinking simplified it *)
  shrink_steps : int;  (** shrink candidates adopted (0 = not shrunk) *)
  trace_tail : string list;  (** last trace events of the failing run *)
}

val make :
  case_key:string ->
  fuzz_seed:int ->
  mutate:bool ->
  ?original:Scenario.t ->
  ?shrink_steps:int ->
  Scenario.t ->
  Oracle.outcome ->
  t

val to_sexp : t -> Sexp.t

(** Raises {!Sexp.Parse_error} on malformed input. *)
val of_sexp : Sexp.t -> t

(** Bundle filename for a case key, e.g. ["fuzz-0013.repro"]. *)
val filename : case_key:string -> string

(** [save ~dir t] writes the bundle under [dir] (created, with parents,
    if needed) and returns the path. Raises [Failure] with a clear
    message when the directory cannot be created or the file cannot be
    written. *)
val save : dir:string -> t -> string

(** [load path] parses a bundle file. Raises [Failure] naming the path
    on a missing/unreadable file or malformed contents. *)
val load : string -> t

val pp : Format.formatter -> t -> unit
