(** Scenario execution against the fuzzer's oracle set.

    [run] builds the scenario's topology, wires its flows and fault
    schedule, and simulates it {e twice} on private trace buses,
    checking:

    - [no-crash] — the simulation raises no exception;
    - [termination] — it finishes [duration] virtual seconds within the
      event budget (no runaway event loops);
    - [invariants] — the online RFC 3448 checker ({!Tfrc.Invariants})
      reports no violation;
    - [queue-conservation] — every link's queue discipline satisfies
      arrivals = departures + drops + queued, exactly;
    - [rate-range] — sampled sender rates / congestion windows are
      finite and non-negative, and loss-event rates stay in [0, 1];
    - [determinism] — both runs emit byte-identical trace streams
      (compared by running digest) and deliver the same packet count.

    All of this is deterministic: the only randomness is the scenario's
    own [sim_seed]. *)

(** One failed oracle. [oracle] is the stable name from the list above. *)
type verdict = { oracle : string; detail : string }

type outcome = {
  failures : verdict list;  (** empty = the scenario passed *)
  events : int;  (** trace events emitted by the first run *)
  delivered : int;  (** data packets delivered to endpoints, first run *)
  digest : int;  (** FNV-1a digest of the first run's trace stream *)
  tail : string list;  (** last trace events of the first run, as JSON *)
}

(** Stable oracle names, in evaluation order. *)
val oracle_names : string list

(** [run ?mutate sc] executes the scenario and evaluates every oracle.
    [mutate] (default false) plants a deterministic accounting bug — one
    phantom queue arrival on a link that dropped packets during an
    outage, the shape of a real historical double-count — in {e both}
    runs, so the queue-conservation oracle must catch it whenever the
    scenario's fault schedule produces outage drops. Used by the
    [--mutate] self-test to prove the fuzzer detects and shrinks real
    violations.

    [builders] picks the network construction for [Path]/[Dumbbell]/
    [Parking_lot] scenarios: [`Legacy] (default) uses the hand-wired
    builders, [`Graph] the {!Netsim.Topo_builders} graph equivalents.
    The two must produce byte-identical traces — the differential tests
    compare their outcomes on the same scenario. [Graph] scenarios are
    always built on {!Netsim.Topology} regardless. *)
val run :
  ?mutate:bool -> ?builders:[ `Legacy | `Graph ] -> Scenario.t -> outcome

(** [failed_oracles o] is the distinct failing oracle names, in order. *)
val failed_oracles : outcome -> string list
