type verdict = { oracle : string; detail : string }

type outcome = {
  failures : verdict list;
  events : int;
  delivered : int;
  digest : int;
  tail : string list;
}

let oracle_names =
  [
    "no-crash";
    "termination";
    "invariants";
    "queue-conservation";
    "rate-range";
    "determinism";
  ]

(* Uniform view over the three topologies, so flow wiring and fault
   application are written once. A [Path] is a one-hop parking lot. *)
type net = {
  src_sender : flow:int -> Netsim.Packet.handler;
  dst_sender : flow:int -> Netsim.Packet.handler;
  set_src_recv : flow:int -> Netsim.Packet.handler -> unit;
  set_dst_recv : flow:int -> Netsim.Packet.handler -> unit;
  links : Netsim.Link.t list;
}

let mean_pktsize = 1000.

let make_queue (sc : Scenario.t) sim () =
  match sc.queue with
  | Scenario.Droptail limit -> Netsim.Droptail.create ~limit_pkts:limit
  | Scenario.Red { min_th; max_th; limit } ->
      let params = Netsim.Red.params ~min_th ~max_th ~limit_pkts:limit () in
      Netsim.Red.create ~params
        ~now:(fun () -> Engine.Sim.now sim)
        ~ptc:(sc.bandwidth /. (8. *. mean_pktsize))

(* Flow endpoints on a [Graph] scenario: a pure function of flow index
   and node count, so the scenario file alone still replays the run. *)
let graph_endpoints ~nodes ~flow =
  let src = flow mod nodes in
  let dst = (flow + max 1 (nodes / 2)) mod nodes in
  if dst = src then (src, (src + 1) mod nodes) else (src, dst)

let build_net ~builders sim (sc : Scenario.t) =
  match (sc.topology, builders) with
  | Scenario.Dumbbell, _ ->
      let queue =
        match sc.queue with
        | Scenario.Droptail limit -> Netsim.Dumbbell.Droptail_q limit
        | Scenario.Red { min_th; max_th; limit } ->
            Netsim.Dumbbell.Red_q
              (Netsim.Red.params ~min_th ~max_th ~limit_pkts:limit ())
      in
      let rt = Engine.Sim.runtime sim in
      (match builders with
      | `Legacy ->
          let db =
            Netsim.Dumbbell.create rt ~bandwidth:sc.bandwidth ~delay:sc.delay
              ~queue ()
          in
          List.iteri
            (fun flow (f : Scenario.flow) ->
              Netsim.Dumbbell.add_flow db ~flow ~rtt_base:f.rtt_base)
            sc.flows;
          {
            src_sender = (fun ~flow -> Netsim.Dumbbell.src_sender db ~flow);
            dst_sender = (fun ~flow -> Netsim.Dumbbell.dst_sender db ~flow);
            set_src_recv =
              (fun ~flow h -> Netsim.Dumbbell.set_src_recv db ~flow h);
            set_dst_recv =
              (fun ~flow h -> Netsim.Dumbbell.set_dst_recv db ~flow h);
            links =
              [ Netsim.Dumbbell.forward_link db; Netsim.Dumbbell.reverse_link db ];
          }
      | `Graph ->
          let module G = Netsim.Topo_builders.Graph_dumbbell in
          let db =
            G.create rt ~bandwidth:sc.bandwidth ~delay:sc.delay ~queue ()
          in
          List.iteri
            (fun flow (f : Scenario.flow) ->
              G.add_flow db ~flow ~rtt_base:f.rtt_base)
            sc.flows;
          {
            src_sender = (fun ~flow -> G.src_sender db ~flow);
            dst_sender = (fun ~flow -> G.dst_sender db ~flow);
            set_src_recv = (fun ~flow h -> G.set_src_recv db ~flow h);
            set_dst_recv = (fun ~flow h -> G.set_dst_recv db ~flow h);
            links = [ G.forward_link db; G.reverse_link db ];
          })
  | (Scenario.Path | Scenario.Parking_lot _), `Legacy ->
      let hops = Scenario.hops sc in
      let pl =
        Netsim.Parking_lot.create (Engine.Sim.runtime sim) ~hops ~bandwidth:sc.bandwidth
          ~delay:sc.delay ~queue:(make_queue sc sim) ()
      in
      List.iteri
        (fun flow (f : Scenario.flow) ->
          match f.hop with
          | Some hop ->
              Netsim.Parking_lot.add_cross_flow pl ~flow ~hop
                ~rtt_base:f.rtt_base
          | None ->
              Netsim.Parking_lot.add_through_flow pl ~flow ~rtt_base:f.rtt_base)
        sc.flows;
      {
        src_sender = (fun ~flow -> Netsim.Parking_lot.src_sender pl ~flow);
        dst_sender = (fun ~flow -> Netsim.Parking_lot.dst_sender pl ~flow);
        set_src_recv =
          (fun ~flow h -> Netsim.Parking_lot.set_src_recv pl ~flow h);
        set_dst_recv =
          (fun ~flow h -> Netsim.Parking_lot.set_dst_recv pl ~flow h);
        links =
          List.init hops (fun i -> Netsim.Parking_lot.link pl ~hop:(i + 1));
      }
  | (Scenario.Path | Scenario.Parking_lot _), `Graph ->
      let module G = Netsim.Topo_builders.Graph_parking_lot in
      let hops = Scenario.hops sc in
      let pl =
        G.create (Engine.Sim.runtime sim) ~hops ~bandwidth:sc.bandwidth
          ~delay:sc.delay ~queue:(make_queue sc sim) ()
      in
      List.iteri
        (fun flow (f : Scenario.flow) ->
          match f.hop with
          | Some hop -> G.add_cross_flow pl ~flow ~hop ~rtt_base:f.rtt_base
          | None -> G.add_through_flow pl ~flow ~rtt_base:f.rtt_base)
        sc.flows;
      {
        src_sender = (fun ~flow -> G.src_sender pl ~flow);
        dst_sender = (fun ~flow -> G.dst_sender pl ~flow);
        set_src_recv = (fun ~flow h -> G.set_src_recv pl ~flow h);
        set_dst_recv = (fun ~flow h -> G.set_dst_recv pl ~flow h);
        links = List.init hops (fun i -> G.link pl ~hop:(i + 1));
      }
  | Scenario.Graph { nodes; extra }, _ ->
      (* Routed graph: [nodes] routers on a bidirectional ring plus
         [extra] bidirectional chords; feedback shares the graph (no
         dedicated reverse path), so routing is exercised both ways. *)
      let rt = Engine.Sim.runtime sim in
      let topo = Netsim.Topology.create rt () in
      let routers = Array.init nodes (fun _ -> Netsim.Topology.add_node topo) in
      let links = ref [] in
      let connect a b =
        let l =
          Netsim.Link.create rt ~bandwidth:sc.bandwidth ~delay:sc.delay
            ~queue:(make_queue sc sim ()) ()
        in
        links := l :: !links;
        ignore (Netsim.Topology.add_link topo ~src:routers.(a) ~dst:routers.(b) l)
      in
      for i = 0 to nodes - 1 do
        let j = (i + 1) mod nodes in
        connect i j;
        connect j i
      done;
      for c = 0 to extra - 1 do
        let a = c mod nodes in
        let b = (a + (nodes / 2)) mod nodes in
        if b <> a then begin
          connect a b;
          connect b a
        end
      done;
      List.iteri
        (fun flow (f : Scenario.flow) ->
          let src_r, dst_r = graph_endpoints ~nodes ~flow in
          let access =
            Float.max 0.
              (((f.rtt_base /. 2.) -. (float_of_int nodes *. sc.delay)) /. 2.)
          in
          let host r =
            let h = Netsim.Topology.add_node topo in
            ignore (Netsim.Topology.add_wire topo ~src:h ~dst:routers.(r) access);
            ignore (Netsim.Topology.add_wire topo ~src:routers.(r) ~dst:h access);
            h
          in
          Netsim.Topology.add_flow topo ~flow ~src:(host src_r) ~dst:(host dst_r))
        sc.flows;
      {
        src_sender = (fun ~flow -> Netsim.Topology.src_sender topo ~flow);
        dst_sender = (fun ~flow -> Netsim.Topology.dst_sender topo ~flow);
        set_src_recv = (fun ~flow h -> Netsim.Topology.set_src_recv topo ~flow h);
        set_dst_recv = (fun ~flow h -> Netsim.Topology.set_dst_recv topo ~flow h);
        links = List.rev !links;
      }

(* Sampled-value checks: `Rate values must be finite and non-negative,
   `Loss values must additionally stay within [0, 1]. *)
type gauge_kind = Rate_gauge | Loss_gauge

let gauge_violation kind v =
  match kind with
  | Rate_gauge ->
      if Float.is_nan v then Some "NaN"
      else if v = Float.infinity then Some "infinite"
      else if v < 0. then Some "negative"
      else None
  | Loss_gauge ->
      if Float.is_nan v then Some "NaN"
      else if v < 0. || v > 1. then Some "outside [0, 1]"
      else None

type run_stats = {
  r_failures : verdict list;
  r_events : int;
  r_delivered : int;
  r_digest : int;
  r_tail : string list;
}

let fnv_prime = 0x100000001b3
let fnv_offset = 0x811c9dc5

let run_once ~mutate ~builders (sc : Scenario.t) =
  let bus = Engine.Trace.create ~ring:40 () in
  let checker = Tfrc.Invariants.create () in
  Tfrc.Invariants.attach checker bus;
  let digest = ref fnv_offset in
  let mix s =
    String.iter (fun c -> digest := (!digest lxor Char.code c) * fnv_prime) s
  in
  Engine.Trace.add_sink bus
    { Engine.Trace.emit = (fun ev -> mix (Engine.Trace.to_json ev));
      close = ignore };
  let sim = Engine.Sim.create ~trace:bus () in
  let rng = Engine.Rng.create ~seed:sc.sim_seed in
  let now () = Engine.Sim.now sim in
  let net = build_net ~builders sim sc in
  let bottleneck = List.hd net.links in
  (* Link-level faults hit the first congested link (the dumbbell's
     forward bottleneck / the parking lot's first hop). *)
  List.iter
    (fun (fault : Scenario.fault) ->
      match fault with
      | Scenario.Outage { at; duration } ->
          Netsim.Faults.outage (Engine.Sim.runtime sim) bottleneck ~at ~duration ()
      | Scenario.Flap { at; stop; period; down_fraction } ->
          Netsim.Faults.flapping (Engine.Sim.runtime sim) bottleneck ~start:at ~stop ~period
            ~down_fraction ()
      | Scenario.Route_change { at; bandwidth_factor } ->
          Netsim.Faults.route_change (Engine.Sim.runtime sim) bottleneck ~at
            ~bandwidth:(sc.bandwidth *. bandwidth_factor)
            ()
      | Scenario.Reorder _ | Scenario.Duplicate _ | Scenario.Corrupt _
      | Scenario.Fb_blackout _ ->
          ())
    sc.faults;
  (* Handler-level faults compose around each flow's endpoints: data-path
     wrappers between the last link and the receiving agent, blackout
     windows on the feedback direction. *)
  let blackout_windows =
    List.filter_map
      (function
        | Scenario.Fb_blackout { at; duration } -> Some (at, at +. duration)
        | _ -> None)
      sc.faults
  in
  let wrap_data dest =
    List.fold_left
      (fun dest (fault : Scenario.fault) ->
        match fault with
        | Scenario.Reorder { p; jitter } ->
            fst (Netsim.Faults.reorder (Engine.Sim.runtime sim) rng ~p ~jitter dest)
        | Scenario.Duplicate { p; delay } ->
            fst (Netsim.Faults.duplicate (Engine.Sim.runtime sim) rng ~p ~delay dest)
        | Scenario.Corrupt { p } -> fst (Netsim.Faults.corrupt rng ~p dest)
        | _ -> dest)
      dest sc.faults
  in
  let wrap_fb dest =
    if blackout_windows = [] then dest
    else fst (Netsim.Faults.blackout ~now ~windows:blackout_windows dest)
  in
  let delivered = ref 0 in
  let count dest pkt =
    incr delivered;
    dest pkt
  in
  let gauges = ref [] in
  let add_gauge name get kind = gauges := (name, get, kind) :: !gauges in
  List.iteri
    (fun flow (f : Scenario.flow) ->
      let g name = Printf.sprintf "flow%d/%s" flow name in
      match f.proto with
      | Scenario.Tfrc ->
          let config = Tfrc.Tfrc_config.default () in
          let receiver =
            Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow
              ~transmit:(wrap_fb (net.dst_sender ~flow))
              ()
          in
          net.set_dst_recv ~flow
            (wrap_data (count (Tfrc.Tfrc_receiver.recv receiver)));
          let sender =
            Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow
              ~transmit:(net.src_sender ~flow) ()
          in
          net.set_src_recv ~flow (Tfrc.Tfrc_sender.recv sender);
          Tfrc.Tfrc_sender.start sender ~at:f.start;
          add_gauge (g "rate")
            (fun () -> Tfrc.Tfrc_sender.rate sender)
            Rate_gauge;
          add_gauge (g "sender_p")
            (fun () -> Tfrc.Tfrc_sender.loss_event_rate sender)
            Loss_gauge;
          add_gauge (g "receiver_p")
            (fun () -> Tfrc.Tfrc_receiver.loss_event_rate receiver)
            Loss_gauge
      | Scenario.Tcp ->
          let config = Tcpsim.Tcp_common.ns_sack in
          let sink =
            Tcpsim.Tcp_sink.create (Engine.Sim.runtime sim) ~config ~flow
              ~transmit:(wrap_fb (net.dst_sender ~flow))
              ()
          in
          net.set_dst_recv ~flow (wrap_data (count (Tcpsim.Tcp_sink.recv sink)));
          let sender =
            Tcpsim.Tcp_sender.create (Engine.Sim.runtime sim) ~config ~flow
              ~transmit:(net.src_sender ~flow) ()
          in
          net.set_src_recv ~flow (Tcpsim.Tcp_sender.recv sender);
          Tcpsim.Tcp_sender.start sender ~at:f.start;
          add_gauge (g "cwnd")
            (fun () -> Tcpsim.Tcp_sender.cwnd sender)
            Rate_gauge
      | Scenario.Tfrcp ->
          let sink =
            Baselines.Echo_sink.create (Engine.Sim.runtime sim) ~flow
              ~transmit:(wrap_fb (net.dst_sender ~flow))
              ()
          in
          net.set_dst_recv ~flow
            (wrap_data (count (Baselines.Echo_sink.recv sink)));
          let sender =
            Baselines.Tfrcp.create (Engine.Sim.runtime sim) ~flow ~transmit:(net.src_sender ~flow) ()
          in
          net.set_src_recv ~flow (Baselines.Tfrcp.recv sender);
          Baselines.Tfrcp.start sender ~at:f.start;
          add_gauge (g "rate") (fun () -> Baselines.Tfrcp.rate sender) Rate_gauge;
          add_gauge (g "p_est")
            (fun () -> Baselines.Tfrcp.loss_estimate sender)
            Loss_gauge
      | Scenario.Rap ->
          let sink =
            Baselines.Echo_sink.create (Engine.Sim.runtime sim) ~flow
              ~transmit:(wrap_fb (net.dst_sender ~flow))
              ()
          in
          net.set_dst_recv ~flow
            (wrap_data (count (Baselines.Echo_sink.recv sink)));
          let sender =
            Baselines.Rap.create (Engine.Sim.runtime sim) ~flow ~transmit:(net.src_sender ~flow) ()
          in
          net.set_src_recv ~flow (Baselines.Rap.recv sender);
          Baselines.Rap.start sender ~at:f.start;
          add_gauge (g "rate") (fun () -> Baselines.Rap.rate sender) Rate_gauge)
    sc.flows;
  (* Sample every gauge on a fixed clock, recording the first violation
     per gauge so a persistent NaN doesn't flood the verdict. *)
  let rate_failures = ref [] in
  let flagged = Hashtbl.create 8 in
  let sample_period = 0.05 in
  let rec sample () =
    List.iter
      (fun (name, get, kind) ->
        if not (Hashtbl.mem flagged name) then
          match gauge_violation kind (get ()) with
          | None -> ()
          | Some why ->
              Hashtbl.replace flagged name ();
              rate_failures :=
                {
                  oracle = "rate-range";
                  detail =
                    Printf.sprintf "[%.4f] %s is %s (%g)" (now ()) name why
                      (get ());
                }
                :: !rate_failures)
      !gauges;
    ignore (Engine.Sim.after sim sample_period sample)
  in
  ignore (Engine.Sim.at sim sample_period sample);
  let crash =
    try
      Engine.Sim.run sim
        ~budget:(Engine.Sim.budget ~max_events:2_000_000 ())
        ~until:sc.duration;
      None
    with
    | Engine.Sim.Budget_exhausted detail ->
        Some { oracle = "termination"; detail }
    | e -> Some { oracle = "no-crash"; detail = Printexc.to_string e }
  in
  if mutate then (
    (* Plant: one phantom arrival on a link that dropped packets during
       an outage — the historical outage-drain double-count, resurrected
       on demand so the harness can prove it would catch it. *)
    match
      List.find_opt (fun l -> Netsim.Link.outage_drops l > 0) net.links
    with
    | Some l ->
        let st = (Netsim.Link.queue l).Netsim.Queue_disc.stats in
        st.Netsim.Queue_disc.arrivals <- st.Netsim.Queue_disc.arrivals + 1
    | None -> ());
  let queue_failures =
    List.filter_map
      (fun l ->
        let q = Netsim.Link.queue l in
        if Netsim.Queue_disc.conserved q then None
        else
          Some
            {
              oracle = "queue-conservation";
              detail =
                Printf.sprintf
                  "link %s: arrivals - departures - drops - queued = %d"
                  (Netsim.Link.label l)
                  (Netsim.Queue_disc.imbalance q);
            })
      net.links
  in
  let inv_failures =
    if Tfrc.Invariants.ok checker then []
    else
      let shown =
        List.filteri (fun i _ -> i < 3) (Tfrc.Invariants.violations checker)
      in
      [
        {
          oracle = "invariants";
          detail =
            Printf.sprintf "%d violation(s): %s"
              (Tfrc.Invariants.n_violations checker)
              (String.concat " | "
                 (List.map
                    (fun (v : Tfrc.Invariants.violation) ->
                      Printf.sprintf "[%.4f] %s: %s" v.time v.rule v.detail)
                    shown));
        };
      ]
  in
  let failures =
    (match crash with Some v -> [ v ] | None -> [])
    @ inv_failures @ queue_failures
    @ List.rev !rate_failures
  in
  {
    r_failures = failures;
    r_events = Engine.Trace.emitted bus;
    r_delivered = !delivered;
    r_digest = !digest;
    r_tail = List.map Engine.Trace.to_json (Engine.Trace.recent bus);
  }

let run ?(mutate = false) ?(builders = `Legacy) sc =
  let a = run_once ~mutate ~builders sc in
  let b = run_once ~mutate ~builders sc in
  let determinism =
    if
      a.r_digest = b.r_digest && a.r_events = b.r_events
      && a.r_delivered = b.r_delivered
    then []
    else
      [
        {
          oracle = "determinism";
          detail =
            Printf.sprintf
              "run A: %d events, %d delivered, digest %x; run B: %d events, \
               %d delivered, digest %x"
              a.r_events a.r_delivered a.r_digest b.r_events b.r_delivered
              b.r_digest;
        };
      ]
  in
  {
    failures = a.r_failures @ determinism;
    events = a.r_events;
    delivered = a.r_delivered;
    digest = a.r_digest;
    tail = a.r_tail;
  }

let failed_oracles o =
  List.fold_left
    (fun acc v -> if List.mem v.oracle acc then acc else acc @ [ v.oracle ])
    [] o.failures
