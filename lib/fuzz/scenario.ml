type topology =
  | Path
  | Dumbbell
  | Parking_lot of int
  | Graph of { nodes : int; extra : int }
      (* [nodes] routers on a bidirectional ring plus [extra] chord links;
         see Oracle.build_net — structure is a pure function of the two
         counts, so the codec stays tiny and replays are exact. *)

type queue =
  | Droptail of int
  | Red of { min_th : float; max_th : float; limit : int }

type proto = Tfrc | Tcp | Tfrcp | Rap

type flow = {
  proto : proto;
  rtt_base : float;
  start : float;
  hop : int option;
}

type fault =
  | Outage of { at : float; duration : float }
  | Flap of { at : float; stop : float; period : float; down_fraction : float }
  | Route_change of { at : float; bandwidth_factor : float }
  | Reorder of { p : float; jitter : float }
  | Duplicate of { p : float; delay : float }
  | Corrupt of { p : float }
  | Fb_blackout of { at : float; duration : float }

type t = {
  id : string;
  sim_seed : int;
  topology : topology;
  bandwidth : float;
  delay : float;
  queue : queue;
  flows : flow list;
  faults : fault list;
  duration : float;
}

let hops t =
  match t.topology with Parking_lot h -> h | Path | Dumbbell | Graph _ -> 1

let min_rtt topology ~delay =
  match topology with
  | Path | Dumbbell -> 2. *. delay
  | Parking_lot h -> 2. *. float_of_int h *. delay
  | Graph { nodes; _ } ->
      (* Worst-case shortest path is under [nodes] hops; the floor leaves
         room for non-negative access wires on both sides. *)
      2. *. float_of_int nodes *. delay

(* ----- generation ----- *)

let gen_topology rng =
  match Engine.Rng.int rng 7 with
  | 0 | 1 -> Path
  | 2 | 3 -> Dumbbell
  | 4 | 5 -> Parking_lot (2 + Engine.Rng.int rng 2)
  | _ ->
      Graph
        { nodes = 3 + Engine.Rng.int rng 3; extra = 1 + Engine.Rng.int rng 2 }

let gen_queue rng =
  if Engine.Rng.bool rng ~p:0.6 then Droptail (8 + Engine.Rng.int rng 43)
  else
    let min_th = Engine.Rng.uniform rng 3. 8. in
    let max_th = min_th *. Engine.Rng.uniform rng 2. 4. in
    let limit = int_of_float (2.5 *. max_th) + 5 in
    Red { min_th; max_th; limit }

let gen_proto rng =
  match Engine.Rng.int rng 8 with
  | 0 | 1 | 2 -> Tfrc
  | 3 | 4 | 5 -> Tcp
  | 6 -> Tfrcp
  | _ -> Rap

let gen_flow rng ~topology ~delay ~first =
  let proto = if first then Tfrc else gen_proto rng in
  let hop =
    match topology with
    | Parking_lot h when (not first) && Engine.Rng.bool rng ~p:0.3 ->
        Some (1 + Engine.Rng.int rng h)
    | _ -> None
  in
  let floor =
    match hop with
    | Some _ -> 2. *. delay (* cross flow spans one hop *)
    | None -> min_rtt topology ~delay
  in
  let rtt_base = floor +. Engine.Rng.uniform rng 0.01 0.08 in
  let start = Engine.Rng.uniform rng 0. 2. in
  { proto; rtt_base; start; hop }

let gen_fault rng ~duration =
  let at () = Engine.Rng.uniform rng 1. (duration -. 3.) in
  match Engine.Rng.int rng 7 with
  | 0 -> Outage { at = at (); duration = Engine.Rng.uniform rng 0.2 1.5 }
  | 1 ->
      let start = at () in
      let stop = Float.min (duration -. 1.) (start +. Engine.Rng.uniform rng 1. 4.) in
      Flap
        {
          at = start;
          stop;
          period = Engine.Rng.uniform rng 0.2 1.0;
          down_fraction = Engine.Rng.uniform rng 0.2 0.6;
        }
  | 2 ->
      Route_change
        { at = at (); bandwidth_factor = Engine.Rng.uniform rng 0.3 1.5 }
  | 3 ->
      Reorder
        {
          p = Engine.Rng.uniform rng 0.01 0.1;
          jitter = Engine.Rng.uniform rng 0.005 0.05;
        }
  | 4 ->
      Duplicate
        {
          p = Engine.Rng.uniform rng 0.01 0.1;
          delay = Engine.Rng.uniform rng 0. 0.02;
        }
  | 5 -> Corrupt { p = Engine.Rng.uniform rng 0.005 0.05 }
  | _ -> Fb_blackout { at = at (); duration = Engine.Rng.uniform rng 0.2 1.0 }

let generate ~id rng =
  let sim_seed = Engine.Rng.bits32 rng in
  let topology = gen_topology rng in
  let bandwidth = Engine.Rng.uniform rng 0.5e6 6.0e6 in
  let delay = Engine.Rng.uniform rng 0.002 0.012 in
  let queue = gen_queue rng in
  let duration = Engine.Rng.uniform rng 8. 25. in
  let n_flows = 1 + Engine.Rng.int rng 4 in
  let flows =
    List.init n_flows (fun i -> gen_flow rng ~topology ~delay ~first:(i = 0))
  in
  let n_faults = Engine.Rng.int rng 4 in
  let faults = List.init n_faults (fun _ -> gen_fault rng ~duration) in
  { id; sim_seed; topology; bandwidth; delay; queue; flows; faults; duration }

(* ----- sexp codec -----

   Floats are hex-float atoms via [Engine.Hexfloat] (shared with
   [Exp.Checkpoint]); they read back bit-exactly, so a scenario file
   replays the identical simulation. *)

let fl f = Sexp.Atom (Engine.Hexfloat.to_string f)
let int i = Sexp.Atom (string_of_int i)
let fld name v = Sexp.List [ Sexp.Atom name; v ]
let ffld name f = fld name (fl f)
let ifld name i = fld name (int i)

let topology_to_sexp = function
  | Path -> Sexp.Atom "path"
  | Dumbbell -> Sexp.Atom "dumbbell"
  | Parking_lot h -> Sexp.List [ Sexp.Atom "parking-lot"; int h ]
  | Graph { nodes; extra } -> Sexp.List [ Sexp.Atom "graph"; int nodes; int extra ]

let topology_of_sexp = function
  | Sexp.Atom "path" -> Path
  | Sexp.Atom "dumbbell" -> Dumbbell
  | Sexp.List [ Sexp.Atom "parking-lot"; Sexp.Atom h ] as v -> (
      match int_of_string_opt h with
      | Some h when h >= 2 -> Parking_lot h
      | _ ->
          raise (Sexp.Parse_error ("bad parking-lot hops: " ^ Sexp.to_string v)))
  | Sexp.List [ Sexp.Atom "graph"; Sexp.Atom n; Sexp.Atom x ] as v -> (
      match (int_of_string_opt n, int_of_string_opt x) with
      | Some nodes, Some extra when nodes >= 3 && extra >= 0 ->
          Graph { nodes; extra }
      | _ -> raise (Sexp.Parse_error ("bad graph: " ^ Sexp.to_string v)))
  | v -> raise (Sexp.Parse_error ("unknown topology: " ^ Sexp.to_string v))

let queue_to_sexp = function
  | Droptail limit -> Sexp.List [ Sexp.Atom "droptail"; int limit ]
  | Red { min_th; max_th; limit } ->
      Sexp.List [ Sexp.Atom "red"; fl min_th; fl max_th; int limit ]

let float_atom v =
  match v with
  | Sexp.Atom s -> (
      match Engine.Hexfloat.of_string_opt s with
      | Some f -> f
      | None -> raise (Sexp.Parse_error ("not a float: " ^ s)))
  | _ -> raise (Sexp.Parse_error "expected float atom")

let int_atom v =
  match v with
  | Sexp.Atom s -> (
      match int_of_string_opt s with
      | Some i -> i
      | None -> raise (Sexp.Parse_error ("not an int: " ^ s)))
  | _ -> raise (Sexp.Parse_error "expected int atom")

let queue_of_sexp = function
  | Sexp.List [ Sexp.Atom "droptail"; limit ] -> Droptail (int_atom limit)
  | Sexp.List [ Sexp.Atom "red"; min_th; max_th; limit ] ->
      Red
        {
          min_th = float_atom min_th;
          max_th = float_atom max_th;
          limit = int_atom limit;
        }
  | v -> raise (Sexp.Parse_error ("unknown queue: " ^ Sexp.to_string v))

let proto_to_string = function
  | Tfrc -> "tfrc"
  | Tcp -> "tcp"
  | Tfrcp -> "tfrcp"
  | Rap -> "rap"

let proto_of_string = function
  | "tfrc" -> Tfrc
  | "tcp" -> Tcp
  | "tfrcp" -> Tfrcp
  | "rap" -> Rap
  | s -> raise (Sexp.Parse_error ("unknown proto: " ^ s))

let flow_to_sexp f =
  let base =
    [
      Sexp.Atom "flow";
      fld "proto" (Sexp.Atom (proto_to_string f.proto));
      ffld "rtt" f.rtt_base;
      ffld "start" f.start;
    ]
  in
  let hop = match f.hop with None -> [] | Some h -> [ ifld "hop" h ] in
  Sexp.List (base @ hop)

let flow_of_sexp v =
  match v with
  | Sexp.List (Sexp.Atom "flow" :: _) ->
      {
        proto = proto_of_string (Sexp.atom_field "proto" v);
        rtt_base = Sexp.float_field "rtt" v;
        start = Sexp.float_field "start" v;
        hop =
          (match Sexp.field "hop" v with
          | Some h -> Some (int_atom h)
          | None -> None);
      }
  | _ -> raise (Sexp.Parse_error ("expected (flow ...): " ^ Sexp.to_string v))

let fault_to_sexp = function
  | Outage { at; duration } ->
      Sexp.List [ Sexp.Atom "outage"; fl at; fl duration ]
  | Flap { at; stop; period; down_fraction } ->
      Sexp.List [ Sexp.Atom "flap"; fl at; fl stop; fl period; fl down_fraction ]
  | Route_change { at; bandwidth_factor } ->
      Sexp.List [ Sexp.Atom "route-change"; fl at; fl bandwidth_factor ]
  | Reorder { p; jitter } -> Sexp.List [ Sexp.Atom "reorder"; fl p; fl jitter ]
  | Duplicate { p; delay } ->
      Sexp.List [ Sexp.Atom "duplicate"; fl p; fl delay ]
  | Corrupt { p } -> Sexp.List [ Sexp.Atom "corrupt"; fl p ]
  | Fb_blackout { at; duration } ->
      Sexp.List [ Sexp.Atom "fb-blackout"; fl at; fl duration ]

let fault_of_sexp = function
  | Sexp.List [ Sexp.Atom "outage"; at; duration ] ->
      Outage { at = float_atom at; duration = float_atom duration }
  | Sexp.List [ Sexp.Atom "flap"; at; stop; period; down_fraction ] ->
      Flap
        {
          at = float_atom at;
          stop = float_atom stop;
          period = float_atom period;
          down_fraction = float_atom down_fraction;
        }
  | Sexp.List [ Sexp.Atom "route-change"; at; bandwidth_factor ] ->
      Route_change
        { at = float_atom at; bandwidth_factor = float_atom bandwidth_factor }
  | Sexp.List [ Sexp.Atom "reorder"; p; jitter ] ->
      Reorder { p = float_atom p; jitter = float_atom jitter }
  | Sexp.List [ Sexp.Atom "duplicate"; p; delay ] ->
      Duplicate { p = float_atom p; delay = float_atom delay }
  | Sexp.List [ Sexp.Atom "corrupt"; p ] -> Corrupt { p = float_atom p }
  | Sexp.List [ Sexp.Atom "fb-blackout"; at; duration ] ->
      Fb_blackout { at = float_atom at; duration = float_atom duration }
  | v -> raise (Sexp.Parse_error ("unknown fault: " ^ Sexp.to_string v))

let to_sexp t =
  Sexp.List
    [
      Sexp.Atom "scenario";
      fld "id" (Sexp.Atom t.id);
      ifld "sim-seed" t.sim_seed;
      fld "topology" (topology_to_sexp t.topology);
      ffld "bandwidth" t.bandwidth;
      ffld "delay" t.delay;
      fld "queue" (queue_to_sexp t.queue);
      fld "flows" (Sexp.List (List.map flow_to_sexp t.flows));
      fld "faults" (Sexp.List (List.map fault_to_sexp t.faults));
      ffld "duration" t.duration;
    ]

let of_sexp v =
  match v with
  | Sexp.List (Sexp.Atom "scenario" :: _) ->
      let flows =
        match Sexp.field "flows" v with
        | Some (Sexp.List l) -> List.map flow_of_sexp l
        | _ -> raise (Sexp.Parse_error "missing or malformed flows")
      in
      if flows = [] then raise (Sexp.Parse_error "scenario has no flows");
      {
        id = Sexp.atom_field "id" v;
        sim_seed = Sexp.int_field "sim-seed" v;
        topology = topology_of_sexp (Option.get (Sexp.field "topology" v));
        bandwidth = Sexp.float_field "bandwidth" v;
        delay = Sexp.float_field "delay" v;
        queue = queue_of_sexp (Option.get (Sexp.field "queue" v));
        flows;
        faults =
          (match Sexp.field "faults" v with
          | Some (Sexp.List l) -> List.map fault_of_sexp l
          | _ -> raise (Sexp.Parse_error "missing or malformed faults"));
        duration = Sexp.float_field "duration" v;
      }
  | _ ->
      raise
        (Sexp.Parse_error ("expected (scenario ...): got " ^ Sexp.to_string v))

(* ----- display ----- *)

let topology_str = function
  | Path -> "path"
  | Dumbbell -> "dumbbell"
  | Parking_lot h -> Printf.sprintf "parking-lot/%d" h
  | Graph { nodes; extra } -> Printf.sprintf "graph/%d+%d" nodes extra

let summary t =
  Printf.sprintf "%s %.1fMb/s %s %d flow%s %d fault%s %.0fs" (topology_str t.topology)
    (t.bandwidth /. 1e6)
    (match t.queue with Droptail l -> Printf.sprintf "droptail/%d" l | Red _ -> "red")
    (List.length t.flows)
    (if List.length t.flows = 1 then "" else "s")
    (List.length t.faults)
    (if List.length t.faults = 1 then "" else "s")
    t.duration

let pp ppf t =
  let fault_str = function
    | Outage { at; duration } -> Printf.sprintf "outage@%.2fs+%.2fs" at duration
    | Flap { at; stop; period; down_fraction } ->
        Printf.sprintf "flap@%.2f-%.2fs p=%.2f down=%.2f" at stop period
          down_fraction
    | Route_change { at; bandwidth_factor } ->
        Printf.sprintf "route-change@%.2fs bw*%.2f" at bandwidth_factor
    | Reorder { p; jitter } -> Printf.sprintf "reorder p=%.3f j=%.3f" p jitter
    | Duplicate { p; delay } -> Printf.sprintf "duplicate p=%.3f d=%.3f" p delay
    | Corrupt { p } -> Printf.sprintf "corrupt p=%.3f" p
    | Fb_blackout { at; duration } ->
        Printf.sprintf "fb-blackout@%.2fs+%.2fs" at duration
  in
  let lines =
    Printf.sprintf "%s (sim-seed %d)" (summary t) t.sim_seed
    :: List.mapi
         (fun i f ->
           Printf.sprintf "flow %d: %s rtt=%.0fms start=%.2fs%s" i
             (proto_to_string f.proto) (f.rtt_base *. 1e3) f.start
             (match f.hop with None -> "" | Some h -> Printf.sprintf " hop=%d" h))
         t.flows
    @ List.map (fun f -> "fault: " ^ fault_str f) t.faults
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Format.pp_print_string)
    lines

(* ----- shrinking ----- *)

let remove_nth l n = List.filteri (fun i _ -> i <> n) l

(* Clamp a flow's base RTT up to the floor a (possibly simpler) topology
   imposes, and drop cross-flow hops that no longer exist. *)
let refit_flow topology ~delay f =
  let hop =
    match (topology, f.hop) with
    | Parking_lot h, Some k when k <= h -> Some k
    | _, _ -> None
  in
  let floor =
    match hop with Some _ -> 2. *. delay | None -> min_rtt topology ~delay
  in
  { f with hop; rtt_base = Float.max f.rtt_base floor }

(* Keep only faults whose trigger fits inside the (possibly shortened)
   run; windowed faults are clamped rather than dropped when possible. *)
let refit_fault ~duration = function
  | Outage { at; duration = d } when at < duration ->
      Some (Outage { at; duration = Float.min d (duration -. at) })
  | Outage _ -> None
  | Flap { at; stop; period; down_fraction } when at < duration ->
      Some (Flap { at; stop = Float.min stop duration; period; down_fraction })
  | Flap _ -> None
  | Route_change { at; _ } as f when at < duration -> Some f
  | Route_change _ -> None
  | (Reorder _ | Duplicate _ | Corrupt _) as f -> Some f
  | Fb_blackout { at; duration = d } when at < duration ->
      Some (Fb_blackout { at; duration = Float.min d (duration -. at) })
  | Fb_blackout _ -> None

let shrink_candidates t =
  let faults_out =
    if t.faults = [] then []
    else
      { t with faults = [] }
      ::
      (if List.length t.faults > 1 then
         List.mapi (fun i _ -> { t with faults = remove_nth t.faults i }) t.faults
       else [])
  in
  let flows_out =
    if List.length t.flows > 1 then
      (* never remove flow 0: an empty or TFRC-free scenario checks nothing *)
      List.filteri (fun i _ -> i > 0) t.flows
      |> List.mapi (fun i _ -> { t with flows = remove_nth t.flows (i + 1) })
    else []
  in
  let shorter =
    if t.duration > 8. then
      let duration = Float.max 4. (t.duration /. 2.) in
      [ { t with duration; faults = List.filter_map (refit_fault ~duration) t.faults } ]
    else []
  in
  let simpler_topology =
    let retarget topology =
      {
        t with
        topology;
        flows = List.map (refit_flow topology ~delay:t.delay) t.flows;
      }
    in
    match t.topology with
    | Graph { nodes; extra } when extra > 0 ->
        [ retarget (Graph { nodes; extra = extra - 1 }) ]
    | Graph { nodes; _ } when nodes > 3 ->
        [ retarget (Graph { nodes = nodes - 1; extra = 0 }) ]
    | Graph _ -> [ retarget Dumbbell ]
    | Parking_lot h when h > 2 -> [ retarget (Parking_lot (h - 1)) ]
    | Parking_lot _ -> [ retarget Dumbbell ]
    | Dumbbell -> [ retarget Path ]
    | Path -> []
  in
  let simpler_queue =
    match t.queue with
    | Red { limit; _ } -> [ { t with queue = Droptail limit } ]
    | Droptail _ -> []
  in
  faults_out @ flows_out @ shorter @ simpler_topology @ simpler_queue
