type t = Atom of string | List of t list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let atom_needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\\' -> true
         | c -> Char.code c < 0x20 || Char.code c = 0x7f)
       s

let quote_atom buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 || Char.code c = 0x7f ->
          Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_atom buf s = if atom_needs_quoting s then quote_atom buf s else Buffer.add_string buf s

let rec add buf = function
  | Atom s -> add_atom buf s
  | List l ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ' ';
          add buf v)
        l;
      Buffer.add_char buf ')'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* The bundle format: the top-level list opens, then each element sits on
   its own indented line. One level only — nested lists stay compact. *)
let to_string_hum = function
  | Atom _ as v -> to_string v
  | List l ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "(";
      List.iter
        (fun v ->
          Buffer.add_string buf "\n  ";
          add buf v)
        l;
      Buffer.add_string buf "\n)\n";
      Buffer.contents buf

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        (* comment to end of line *)
        while !pos < n && s.[!pos] <> '\n' do
          advance ()
        done;
        skip_ws ()
    | _ -> ()
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> parse_error "invalid hex digit %C at offset %d" c !pos
  in
  let parse_quoted () =
    advance ();
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> parse_error "unterminated string at offset %d" !pos
      | Some '"' ->
          advance ();
          Buffer.contents buf
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> parse_error "unterminated escape at offset %d" !pos
          | Some 'n' ->
              advance ();
              Buffer.add_char buf '\n';
              loop ()
          | Some 't' ->
              advance ();
              Buffer.add_char buf '\t';
              loop ()
          | Some 'r' ->
              advance ();
              Buffer.add_char buf '\r';
              loop ()
          | Some 'x' ->
              advance ();
              if !pos + 1 >= n then parse_error "truncated \\x escape";
              let h = hex_digit s.[!pos] in
              advance ();
              let l = hex_digit s.[!pos] in
              advance ();
              Buffer.add_char buf (Char.chr ((h * 16) + l));
              loop ()
          | Some c ->
              advance ();
              Buffer.add_char buf c;
              loop ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ()
  in
  let parse_bare () =
    let start = !pos in
    let rec loop () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None -> ()
      | Some _ ->
          advance ();
          loop ()
    in
    loop ();
    String.sub s start (!pos - start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input at offset %d" !pos
    | Some '(' ->
        advance ();
        let rec items acc =
          skip_ws ();
          match peek () with
          | None -> parse_error "unterminated list at offset %d" !pos
          | Some ')' ->
              advance ();
              List (List.rev acc)
          | Some _ -> items (parse_value () :: acc)
        in
        items []
    | Some ')' -> parse_error "unexpected ')' at offset %d" !pos
    | Some '"' -> Atom (parse_quoted ())
    | Some _ -> Atom (parse_bare ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error "trailing garbage at offset %d" !pos;
  v

let field name = function
  | List items ->
      List.find_map
        (function
          | List [ Atom n; v ] when n = name -> Some v
          | List (Atom n :: (_ :: _ :: _ as vs)) when n = name -> Some (List vs)
          | _ -> None)
        items
  | Atom _ -> None

let missing what name = parse_error "missing or malformed %s field %S" what name

let atom_field name v =
  match field name v with Some (Atom s) -> s | _ -> missing "atom" name

let int_field name v =
  match field name v with
  | Some (Atom s) -> (
      match int_of_string_opt s with
      | Some i -> i
      | None -> parse_error "field %S is not an integer: %S" name s)
  | _ -> missing "int" name

let float_field name v =
  match field name v with
  | Some (Atom s) -> (
      match Engine.Hexfloat.of_string_opt s with
      | Some f -> f
      | None -> parse_error "field %S is not a float: %S" name s)
  | _ -> missing "float" name

let list_field name v =
  match field name v with
  | Some (List l) -> l
  | Some (Atom _) -> parse_error "field %S is an atom, expected a list" name
  | None -> missing "list" name
