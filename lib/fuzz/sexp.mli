(** Minimal s-expressions for scenario and repro-bundle serialization.

    Atoms that contain whitespace, parentheses, quotes or control
    characters are printed as double-quoted strings with backslash
    escapes; everything round-trips exactly ([of_string (to_string v) =
    v] for any value, including atoms holding arbitrary bytes). Floats
    are serialized elsewhere as hex-float atoms ([%h]), which
    [float_of_string] reads back losslessly — the same trick the
    checkpoint store uses. *)

type t = Atom of string | List of t list

exception Parse_error of string

(** Compact one-line rendering. *)
val to_string : t -> string

(** Multi-line rendering: each element of a top-level list on its own
    indented line — the repro-bundle file format. Parses back with
    {!of_string} like any other whitespace. *)
val to_string_hum : t -> string

(** Parses one s-expression; raises {!Parse_error} on malformed input or
    trailing garbage (other than whitespace). *)
val of_string : string -> t

(** [field name v] finds [(name x)] in the list [v] and returns [x];
    [None] when absent or [v] has the wrong shape. *)
val field : string -> t -> t option

(** Accessors for the common [(name value)] field shapes; all raise
    {!Parse_error} naming the field when it is absent or malformed. *)

val atom_field : string -> t -> string

val int_field : string -> t -> int

val float_field : string -> t -> float

val list_field : string -> t -> t list
