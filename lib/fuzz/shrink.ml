type result = {
  scenario : Scenario.t;
  outcome : Oracle.outcome;
  steps : int;
  runs : int;
}

let still_fails ~oracle (o : Oracle.outcome) =
  List.exists (fun (v : Oracle.verdict) -> v.oracle = oracle) o.failures

let minimize ?(mutate = false) ?(max_runs = 300) ~oracle sc =
  let runs = ref 0 in
  let eval sc =
    incr runs;
    Oracle.run ~mutate sc
  in
  let rec descend sc outcome steps =
    let rec try_candidates = function
      | [] -> (sc, outcome, steps)
      | candidate :: rest ->
          if !runs >= max_runs then (sc, outcome, steps)
          else
            let o = eval candidate in
            if still_fails ~oracle o then descend candidate o (steps + 1)
            else try_candidates rest
    in
    if !runs >= max_runs then (sc, outcome, steps)
    else try_candidates (Scenario.shrink_candidates sc)
  in
  let outcome0 = eval sc in
  let scenario, outcome, steps =
    if still_fails ~oracle outcome0 then descend sc outcome0 0
    else (sc, outcome0, 0)
  in
  { scenario; outcome; steps; runs = !runs }
