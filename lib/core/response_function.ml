type kind = Pftk | Simple

let check ~s ~r ~p =
  if s <= 0 then invalid_arg "Response_function: packet size must be positive";
  if r <= 0. then invalid_arg "Response_function: RTT must be positive";
  if p <= 0. || p > 1. then invalid_arg "Response_function: p must be in (0,1]"

let rate kind ~s ~r ~t_rto ~p =
  check ~s ~r ~p;
  let s = float_of_int s in
  match kind with
  | Simple -> s *. sqrt 1.5 /. (r *. sqrt p)
  | Pftk ->
      let denom =
        (r *. sqrt (2. *. p /. 3.))
        +. (t_rto *. (3. *. sqrt (3. *. p /. 8.)) *. p *. (1. +. (32. *. p *. p)))
      in
      s /. denom

let rate_pkts_per_rtt kind ~t_rto_rtts ~p =
  (* Dividing T by s/R gives packets per RTT; equivalently evaluate with
     s = 1 byte, R = 1 s, t_RTO = t_rto_rtts seconds. *)
  rate kind ~s:1 ~r:1. ~t_rto:t_rto_rtts ~p

let inverse kind ~s ~r ~t_rto ~rate:target =
  if target <= 0. then invalid_arg "Response_function.inverse: rate must be positive";
  let f p = rate kind ~s ~r ~t_rto ~p in
  let lo = 1e-8 and hi = 1.0 in
  (* rate is decreasing in p *)
  if f lo <= target then lo
  else if f hi >= target then hi
  else begin
    let lo = ref lo and hi = ref hi in
    for _ = 1 to 100 do
      let mid = sqrt (!lo *. !hi) (* geometric: p spans many decades *) in
      if f mid > target then lo := mid else hi := mid
    done;
    sqrt (!lo *. !hi)
  end

let loss_event_fraction ~p_loss ~n =
  if p_loss < 0. || p_loss > 1. then
    invalid_arg "Response_function.loss_event_fraction: bad p_loss";
  if n <= 0. then invalid_arg "Response_function.loss_event_fraction: bad n";
  if p_loss = 0. then 0. else (1. -. ((1. -. p_loss) ** n)) /. n

let fixed_point_event_rate kind ~t_rto_rtts ~p_loss ~rate_factor =
  if p_loss <= 0. then 0.
  else begin
    (* Damped fixed point: p_{k+1} = (1-d)*p_k + d*g(p_k). *)
    let g p_event =
      let p_event = Float.max 1e-8 (Float.min 1. p_event) in
      let n = Float.max 1. (rate_factor *. rate_pkts_per_rtt kind ~t_rto_rtts ~p:p_event) in
      loss_event_fraction ~p_loss ~n
    in
    let p = ref p_loss in
    let converged = ref false in
    let i = ref 0 in
    (* The damped map contracts, so once a step moves less than the
       tolerance every further step moves even less: stopping here agrees
       with the fixed 200-iteration tail to well under the 1e-12 tolerance
       while skipping most of the iterations on typical inputs. *)
    while (not !converged) && !i < 200 do
      let p' = (0.5 *. !p) +. (0.5 *. g !p) in
      if Float.abs (p' -. !p) < 1e-12 then converged := true;
      p := p';
      incr i
    done;
    !p
  end
