(** Convenience wiring for a TFRC connection.

    Building a connection by hand means creating the receiver before the
    sender (or breaking the cycle with a mutable cell) and routing two
    packet directions. [Session.create] does that dance: you supply the two
    path constructors — each takes the destination endpoint's handler and
    returns the handler the origin will transmit into (identity for a
    loopback; a function that schedules delays/losses/queues for anything
    real) — and get both endpoints back, already connected.

    {[
      (* 80 ms symmetric path with 1% random loss on data: *)
      let rt = Engine.Sim.runtime sim in
      let session =
        Tfrc.Session.create rt ~flow:1
          ~data_path:(fun deliver ->
            fun pkt ->
              if not (Engine.Rng.bool rng ~p:0.01) then
                ignore (Engine.Runtime.after rt 0.04 (fun () -> deliver pkt)))
          ~feedback_path:(fun deliver ->
            fun pkt ->
              ignore (Engine.Runtime.after rt 0.04 (fun () -> deliver pkt)))
          ()
      in
      Tfrc.Session.start session ~at:0.
    ]}

    The session is runtime-agnostic: pass {!Engine.Sim.runtime} to
    simulate, or a wire loop's runtime to run the same state machines
    over real time and sockets. *)

type t = {
  sender : Tfrc_sender.t;
  receiver : Tfrc_receiver.t;
}

(** [create rt ?config ~flow ~data_path ~feedback_path ()] builds a
    connected sender/receiver pair. [data_path] receives the receiver's
    handler and must return the handler the sender transmits into;
    [feedback_path] the same for the reverse direction. *)
val create :
  Engine.Runtime.t ->
  ?config:Tfrc_config.t ->
  flow:int ->
  data_path:(Netsim.Packet.handler -> Netsim.Packet.handler) ->
  feedback_path:(Netsim.Packet.handler -> Netsim.Packet.handler) ->
  unit ->
  t

(** [start t ~at] starts the sender. *)
val start : t -> at:float -> unit

(** [stop t] halts the sender and the receiver's feedback timer. *)
val stop : t -> unit

(** [over_dumbbell db ?config ~flow ~rtt_base ()] registers the flow on a
    dumbbell and wires a session across it. *)
val over_dumbbell :
  Netsim.Dumbbell.t ->
  ?config:Tfrc_config.t ->
  flow:int ->
  rtt_base:float ->
  unit ->
  t
