type t = {
  n : int;
  discounting : bool;
  discount_threshold : float;
  w : float array; (* w.(0) weights the most recent closed interval *)
  intervals : float array; (* ring buffer, newest at [head] *)
  df : float array; (* locked-in discount factors, aligned with intervals *)
  mutable head : int;
  mutable count : int; (* closed intervals stored, <= n *)
  mutable s0 : float; (* open interval since last loss event *)
}

let weights ~n ~constant =
  if n < 2 || n mod 2 <> 0 then invalid_arg "Loss_intervals.weights: n must be even >= 2";
  Array.init n (fun j ->
      if constant || j < n / 2 then 1.
      else begin
        (* Paper (1-based i, n/2 < i <= n): w_i = 1 - (i - n/2)/(n/2 + 1). *)
        let i = float_of_int (j + 1) in
        let half = float_of_int (n / 2) in
        1. -. ((i -. half) /. (half +. 1.))
      end)

let create ?(n = 8) ?(discounting = true) ?(discount_threshold = 0.25)
    ?(constant_weights = false) () =
  {
    n;
    discounting;
    discount_threshold;
    w = weights ~n ~constant:constant_weights;
    intervals = Array.make n 0.;
    df = Array.make n 1.;
    head = 0;
    count = 0;
    s0 = 0.;
  }

(* intervals are stored newest-first logically: index k in [0, count) maps to
   the (k+1)-th most recent closed interval. *)
let get t k = t.intervals.((t.head - 1 - k + (2 * t.n)) mod t.n)
let get_df t k = t.df.((t.head - 1 - k + (2 * t.n)) mod t.n)

let n_closed t = t.count
let open_interval t = t.s0
let set_open_interval t ~packets = t.s0 <- Float.max 0. packets

let seed t ~interval =
  if t.count <> 0 then invalid_arg "Loss_intervals.seed: history not empty";
  if interval <= 0. then invalid_arg "Loss_intervals.seed: interval must be positive";
  t.intervals.(t.head) <- interval;
  t.df.(t.head) <- 1.;
  t.head <- (t.head + 1) mod t.n;
  t.count <- 1

(* Weighted mean over closed intervals 1..count with optional extra discount
   factor applied to every closed interval. *)
let mean_with t ~extra_df =
  if t.count = 0 then None
  else begin
    let num = ref 0. and den = ref 0. in
    for k = 0 to t.count - 1 do
      let w = t.w.(k) *. get_df t k *. extra_df in
      num := !num +. (w *. get t k);
      den := !den +. w
    done;
    if !den = 0. then None else Some (!num /. !den)
  end

let mean_closed t = mean_with t ~extra_df:1.

(* Discount factor for the open interval relative to the undiscounted mean
   of the closed intervals. *)
let current_df t =
  if not t.discounting then 1.
  else
    match mean_closed t with
    | None -> 1.
    | Some avg ->
        if t.s0 > 2. *. avg && t.s0 > 0. then
          Float.max t.discount_threshold (2. *. avg /. t.s0)
        else 1.

(* The estimator: max of the history-only mean and the mean that shifts s0
   in as the most recent interval (both using locked-in DFs; the shifted-in
   variant additionally discounts all closed intervals by current_df). *)
let average t =
  if t.count = 0 then None
  else begin
    let df0 = current_df t in
    (* s_hat over closed intervals 1..n (discounted by locked DFs only). *)
    let s_hat = mean_with t ~extra_df:1. in
    (* s_hat_new over s0 and closed intervals, weights shifted by one:
       w_1 on s0, w_2 on the most recent closed interval, ... The closed
       intervals are further discounted by df0. *)
    let num = ref (t.w.(0) *. t.s0) and den = ref t.w.(0) in
    let m = min t.count (t.n - 1) in
    for k = 0 to m - 1 do
      let w = t.w.(k + 1) *. get_df t k *. df0 in
      num := !num +. (w *. get t k);
      den := !den +. w
    done;
    let s_hat_new = !num /. !den in
    match s_hat with
    | None -> Some s_hat_new
    | Some s -> Some (Float.max s s_hat_new)
  end

let rate_of_average = function
  | None -> 0.
  | Some avg -> if avg <= 0. then 1. else Float.min 1. (1. /. avg)

let loss_event_rate t = rate_of_average (average t)

let record_interval t ~length =
  let length = Float.max 0. length in
  (* Lock the current discount into the history: everything that was closed
     gets multiplied by the discount in force when this interval ended. *)
  let df0 = current_df t in
  if df0 < 1. then
    for k = 0 to t.count - 1 do
      let idx = (t.head - 1 - k + (2 * t.n)) mod t.n in
      t.df.(idx) <- t.df.(idx) *. df0
    done;
  t.intervals.(t.head) <- length;
  t.df.(t.head) <- 1.;
  t.head <- (t.head + 1) mod t.n;
  if t.count < t.n then t.count <- t.count + 1;
  t.s0 <- 0.
