type t = {
  sender : Tfrc_sender.t;
  receiver : Tfrc_receiver.t;
}

let create rt ?config ~flow ~data_path ~feedback_path () =
  let config =
    match config with Some c -> c | None -> Tfrc_config.default ()
  in
  (* The sender's transmit function needs the receiver, which needs the
     sender's feedback handler: break the cycle with a forward cell. *)
  let receiver_cell = ref None in
  let deliver_to_receiver pkt =
    match !receiver_cell with
    | Some r -> Tfrc_receiver.recv r pkt
    | None -> ()
  in
  let sender =
    Tfrc_sender.create rt ~config ~flow
      ~transmit:(data_path deliver_to_receiver)
      ()
  in
  let receiver =
    Tfrc_receiver.create rt ~config ~flow
      ~transmit:(feedback_path (Tfrc_sender.recv sender))
      ()
  in
  receiver_cell := Some receiver;
  { sender; receiver }

let start t ~at = Tfrc_sender.start t.sender ~at

let stop t =
  Tfrc_sender.stop t.sender;
  Tfrc_receiver.stop t.receiver

let over_dumbbell db ?config ~flow ~rtt_base () =
  let rt = Netsim.Dumbbell.runtime db in
  Netsim.Dumbbell.add_flow db ~flow ~rtt_base;
  create rt ?config ~flow
    ~data_path:(fun deliver ->
      Netsim.Dumbbell.set_dst_recv db ~flow deliver;
      Netsim.Dumbbell.src_sender db ~flow)
    ~feedback_path:(fun deliver ->
      Netsim.Dumbbell.set_src_recv db ~flow deliver;
      Netsim.Dumbbell.dst_sender db ~flow)
    ()
