(** TFRC protocol parameters, with the paper's defaults. *)

type t = {
  packet_size : int;  (** s, bytes (paper: 1000) *)
  feedback_size : int;  (** feedback packet size, bytes *)
  n_intervals : int;  (** loss-interval history size, paper: 8 *)
  history_discounting : bool;
  discount_threshold : float;  (** maximum discount, 0.25 *)
  constant_weights : bool;  (** disable the decreasing weight tail *)
  rtt_gain : float;
      (** EWMA weight on a new RTT sample; the paper recommends a small
          value (0.05-0.1) paired with the interpacket-spacing
          stabilization *)
  delay_gain : bool;
      (** scale interpacket spacing by sqrt(R0)/M (Section 3.4); the
          short-term delay-based congestion-avoidance term *)
  t_rto_factor : float;  (** t_RTO = factor * R; paper heuristic: 4 *)
  response : Response_function.kind;  (** control equation (Equation 1) *)
  initial_rtt : float;  (** RTT assumed before the first measurement *)
  initial_nofb_timeout : float;
      (** no-feedback timer value used until a real RTT measurement
          exists: RFC 3448 sections 4.2/4.3 prescribe 2 seconds for the
          initial timer rather than [t_rto_factor * initial_rtt], since
          before any feedback the RTT "estimate" is only an assumption.
          Default 2. (the RFC value). *)
  ndupack : int;  (** reordering tolerance at the receiver *)
  slow_start : bool;  (** rate-doubling startup with receive-rate cap *)
  min_rate : float;  (** floor on the sending rate, bytes/s *)
  feedback_on_loss : bool;
      (** send expedited feedback when a new loss event is detected *)
  ecn : bool;
      (** declare data packets ECN-capable and treat congestion marks as
          loss events (Section 7 outlook) *)
  burst_pkts : int;
      (** send this many packets back to back every [burst_pkts]
          interpacket intervals; the paper's Section 4.1 remark that
          sending two packets every two intervals lets small-window TCP
          compete more fairly. Default 1. *)
  rate_validation : bool;
      (** cap the allowed rate at twice the reported receive rate (RFC 5348
          section 4.3): a sender that was application-limited or quiescent
          cannot burst at a stale high rate afterwards — the rate-based
          analogue of TCP congestion-window validation, which the paper's
          Section 7 planned to add. Default false (paper behavior). *)
  t_mbi : float;
      (** maximum backoff interval of the no-feedback timer, seconds
          (RFC 3448 section 4.4's t_mbi): during a prolonged feedback
          outage the timer's interval grows as the rate halves but never
          beyond this, so the sender keeps probing the path. Default 64. *)
  slow_restart : bool;
      (** after no-feedback expirations, cap the rate restored by the next
          feedback at max(2 * recv_rate, s/R) instead of jumping back to
          the equation rate computed from stale pre-outage state; the
          sender then ramps up as fresh receive-rate reports come in
          (RFC 3448 section 4.4 behavior). Default true. *)
}

(** Build a configuration, validating it on the way out: every numeric
    parameter is range-checked ([packet_size], [min_rate], [initial_rtt],
    [rtt_gain], [t_rto_factor], [t_mbi] must be positive, counts at least
    1) and [Invalid_argument] is raised on violation, so a malformed
    configuration cannot silently misbehave deep inside a simulation.
    [min_rate] defaults to one packet per 64 s ([packet_size] / 64, the
    RFC 3448 minimum of one packet per [t_mbi]). *)
val default :
  ?packet_size:int ->
  ?n_intervals:int ->
  ?history_discounting:bool ->
  ?constant_weights:bool ->
  ?rtt_gain:float ->
  ?delay_gain:bool ->
  ?t_rto_factor:float ->
  ?response:Response_function.kind ->
  ?initial_rtt:float ->
  ?initial_nofb_timeout:float ->
  ?slow_start:bool ->
  ?feedback_on_loss:bool ->
  ?ndupack:int ->
  ?ecn:bool ->
  ?burst_pkts:int ->
  ?rate_validation:bool ->
  ?min_rate:float ->
  ?t_mbi:float ->
  ?slow_restart:bool ->
  unit ->
  t

(** [validate t] re-checks an arbitrary record (e.g. built with [{ c with
    ... }]) and returns it; raises [Invalid_argument] with the offending
    field on violation. *)
val validate : t -> t
