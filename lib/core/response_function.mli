(** The TCP response function: the control equation of equation-based
    congestion control (Section 2, Equation 1).

    Two forms are provided:

    - [Pftk] (Equation 1, from Padhye/Firoiu/Towsley/Kurose 1998):
      {v T = s / ( R*sqrt(2p/3) + t_RTO * (3*sqrt(3p/8)) * p * (1+32p^2) ) v}
      including the retransmit-timeout term that dominates at high loss.
    - [Simple] (Mahdavi/Floyd 1997, used in Appendix A's analysis):
      {v T = s*sqrt(3/2) / (R*sqrt(p)) v}

    Rates are in bytes/second; [s] is the packet size in bytes, [r] the
    round-trip time in seconds, [t_rto] the retransmit timeout in seconds,
    and [p] the loss event rate. *)

type kind = Pftk | Simple

(** [rate kind ~s ~r ~t_rto ~p] is the allowed sending rate in bytes/s.
    Requires [p > 0.], [r > 0.], [s > 0]. ([t_rto] is ignored by
    [Simple].) *)
val rate : kind -> s:int -> r:float -> t_rto:float -> p:float -> float

(** [rate_pkts_per_rtt kind ~t_rto_rtts ~p] is the allowed rate expressed in
    packets per round-trip time (independent of [s] and [r]);
    [t_rto_rtts] is the timeout in units of RTTs (the paper's heuristic is
    4). For [Simple] this is [sqrt(1.5/p) ~= 1.2/sqrt p]. *)
val rate_pkts_per_rtt : kind -> t_rto_rtts:float -> p:float -> float

(** [inverse kind ~s ~r ~t_rto ~rate] finds the loss event rate [p] at which
    the control equation yields [rate], by bisection on [p] in
    [\[1e-8, 1\]]. Used to seed the loss history when slow start ends
    (Section 3.4.1). Result is clamped to that interval. *)
val inverse : kind -> s:int -> r:float -> t_rto:float -> rate:float -> float

(** [loss_event_fraction ~p_loss ~n] is the Bernoulli-model loss-event
    fraction of Section 3.5.1: [(1 - (1 - p_loss)^n) / n] for a flow sending
    [n] packets per RTT. *)
val loss_event_fraction : p_loss:float -> n:float -> float

(** [fixed_point_event_rate kind ~t_rto_rtts ~p_loss ~rate_factor] solves
    the self-consistent loss-event fraction of Figure 5: the flow sends
    [N = rate_factor * f(p_event)] packets per RTT where [f] is the control
    equation, and [p_event = (1-(1-p_loss)^N)/N]. Returns [p_event].
    Solved by damped fixed-point iteration, stopping early once an
    iteration moves the estimate by less than 1e-12 (bounded at 200
    iterations). *)
val fixed_point_event_rate :
  kind -> t_rto_rtts:float -> p_loss:float -> rate_factor:float -> float
