(* Online RFC 3448 conformance checker: a Trace sink that validates runtime
   invariants as events stream past. Attach it to a bus (usually
   [Engine.Trace.default ()]), run any simulation, then ask [ok]/[report].

   Checked rules (RFC 3448 / RFC 5348 section references):
   - time-monotone: trace-event timestamps never decrease within one
     simulation (the event heap fires in time order; a violation means a
     scheduler bug). Reset at each [sim/created]; [exp/*] runner
     bookkeeping events are exempt (they carry wall-clock, not sim, time).
   - sender-rate-bound (4.3, rate validation / slow start 4.2): on a
     feedback-driven rate update, the new allowed rate stays within
     2 * X_recv (when rate validation is on and losses are reported) or,
     loss-free, within max(previous rate, 2 * X_recv, s/R).
   - nofb-backoff (4.4): successive no-feedback expirations without an
     intervening feedback schedule non-decreasing intervals, capped at
     t_mbi; the backed-off rate never goes below the configured floor.
   - loss-rate-range (5.4): the receiver's reported loss event rate is in
     [0, 1], strictly positive once loss intervals exist, and the average
     loss interval behind it is strictly positive.
   - link-conservation: per link, packets delivered plus packets dropped
     never exceed packets offered (nothing is created in flight).
   - queue-conservation: a [link/queue] counter snapshot (emitted at
     up/down transitions and on demand) satisfies the strict per-queue
     arithmetic arrivals = departures + drops + queued, exactly.
   - wire-sup-legal: supervised endpoint lifecycle transitions
     ([wire/sup_transition] events, emitted by the wire layer's
     supervisor) follow the state machine — each event's [from] matches
     the last recorded state for its flow, and the edge is in the legal
     relation (no self-loops; Backoff only from Degraded or Starting;
     Closed terminal). *)

type violation = { time : float; rule : string; detail : string }

(* Per-flow checker state. The config half ([s], [min_rate], [rv], [t_mbi])
   is announced once by the flow's [tfrc/start] event; until it is seen the
   lenient defaults below keep every config-dependent rule vacuous, so a
   partial trace cannot false-positive. *)
type flow_state = {
  mutable last_nofb_interval : float;
  mutable s : float; (* segment size, bytes; 0 = unknown *)
  mutable min_rate : float;
  mutable rv : bool; (* rate validation enabled *)
  mutable t_mbi : float;
}
type link_state = { mutable sent : int; mutable delivered : int; mutable dropped : int }

type t = {
  mutable last_time : float;
  mutable n_events : int;
  mutable n_violations : int;
  mutable violations : violation list; (* newest first, capped *)
  flows : (int, flow_state) Hashtbl.t;
  links : (string, link_state) Hashtbl.t;
  sup_states : (int, string) Hashtbl.t; (* per-flow last supervisor state *)
  mutable self_sink : Engine.Trace.sink option; (* cached so detach matches attach *)
}

(* Floating-point slack: the sender computes its bounds in the same
   arithmetic we re-check them in, so only rounding noise needs absorbing. *)
let eps = 1e-6
let max_kept = 100

let create () =
  {
    last_time = neg_infinity;
    n_events = 0;
    n_violations = 0;
    violations = [];
    flows = Hashtbl.create 8;
    links = Hashtbl.create 8;
    sup_states = Hashtbl.create 4;
    self_sink = None;
  }

let reset_run_state t =
  t.last_time <- neg_infinity;
  Hashtbl.reset t.flows;
  Hashtbl.reset t.links;
  Hashtbl.reset t.sup_states

let violate t ~time ~rule fmt =
  Printf.ksprintf
    (fun detail ->
      t.n_violations <- t.n_violations + 1;
      if t.n_violations <= max_kept then
        t.violations <- { time; rule; detail } :: t.violations)
    fmt

let flow_state t flow =
  match Hashtbl.find_opt t.flows flow with
  | Some s -> s
  | None ->
      let s =
        {
          last_nofb_interval = 0.;
          s = 0.;
          min_rate = 0.;
          rv = false;
          t_mbi = Float.infinity;
        }
      in
      Hashtbl.replace t.flows flow s;
      s

let link_state t link =
  match Hashtbl.find_opt t.links link with
  | Some s -> s
  | None ->
      let s = { sent = 0; delivered = 0; dropped = 0 } in
      Hashtbl.replace t.links link s;
      s

let ffield = Engine.Trace.get_float
let ifield = Engine.Trace.get_int
let sfield = Engine.Trace.get_str
let bfield = Engine.Trace.get_bool

let check_start t (ev : Engine.Trace.event) =
  let flow = ifield ev "flow" ~default:0 in
  let st = flow_state t flow in
  st.s <- ffield ev "s" ~default:0.;
  st.min_rate <- ffield ev "min_rate" ~default:0.;
  st.rv <- bfield ev "rv" ~default:false;
  st.t_mbi <- ffield ev "t_mbi" ~default:Float.infinity;
  st.last_nofb_interval <- 0.

(* The checks below run per event on hot paths; each first pattern-matches
   the exact field shape the instrumented sender/receiver emits (an
   allocation-free single pass) and only falls back to keyed {!ffield}
   lookups for hand-built events, e.g. from tests. *)

let check_rate_update t (ev : Engine.Trace.event) =
  let time = ev.time in
  let flow, rate, prev_rate, recv_rate, p, rtt =
    match ev.fields with
    | [
     ("flow", Engine.Trace.Int flow);
     ("rate", Float rate);
     ("prev_rate", Float prev_rate);
     ("recv_rate", Float recv_rate);
     ("p", Float p);
     ("rtt", Float rtt);
    ] ->
        (flow, rate, prev_rate, recv_rate, p, rtt)
    | _ ->
        ( ifield ev "flow" ~default:0,
          ffield ev "rate" ~default:nan,
          ffield ev "prev_rate" ~default:0.,
          ffield ev "recv_rate" ~default:0.,
          ffield ev "p" ~default:0.,
          ffield ev "rtt" ~default:0. )
  in
  let st = flow_state t flow in
  if not (Float.is_finite rate) || rate <= 0. then
    violate t ~time ~rule:"sender-rate-bound" "flow %d: rate %g not finite positive"
      flow rate
  else begin
    (if p > 0. && st.rv && recv_rate > 0. then
       let bound = Float.max (2. *. recv_rate) st.min_rate in
       if rate > bound *. (1. +. eps) then
         violate t ~time ~rule:"sender-rate-bound"
           "flow %d: rate %.1f exceeds 2*X_recv bound %.1f (X_recv %.1f, RFC 3448 4.3)"
           flow rate bound recv_rate);
    if p <= 0. then begin
      let bound =
        Float.max
          (Float.max prev_rate (2. *. recv_rate))
          (Float.max st.min_rate (if rtt > 0. then st.s /. rtt else 0.))
      in
      if rate > bound *. (1. +. eps) then
        violate t ~time ~rule:"sender-rate-bound"
          "flow %d: loss-free rate %.1f exceeds max(prev %.1f, 2*X_recv %.1f, s/R) \
           (RFC 3448 4.2)"
          flow rate prev_rate (2. *. recv_rate)
    end
  end;
  (* A feedback arrival ends any no-feedback backoff sequence. *)
  st.last_nofb_interval <- 0.

let check_nofb_expiry t (ev : Engine.Trace.event) =
  let time = ev.time in
  let flow, rate, interval, consecutive =
    match ev.fields with
    | [
     ("flow", Engine.Trace.Int flow);
     ("rate", Float rate);
     ("interval", Float interval);
     ("consecutive", Int consecutive);
    ] ->
        (flow, rate, interval, consecutive)
    | _ ->
        ( ifield ev "flow" ~default:0,
          ffield ev "rate" ~default:nan,
          ffield ev "interval" ~default:nan,
          ifield ev "consecutive" ~default:1 )
  in
  let st = flow_state t flow in
  if not (Float.is_finite interval) || interval <= 0. then
    violate t ~time ~rule:"nofb-backoff" "flow %d: bad no-feedback interval %g" flow
      interval
  else begin
    if interval > st.t_mbi *. (1. +. eps) then
      violate t ~time ~rule:"nofb-backoff"
        "flow %d: no-feedback interval %.3f exceeds t_mbi %.3f (RFC 3448 4.4)" flow
        interval st.t_mbi;
    if consecutive >= 2 && interval < st.last_nofb_interval *. (1. -. eps) then
      violate t ~time ~rule:"nofb-backoff"
        "flow %d: backoff interval shrank %.3f -> %.3f without feedback" flow
        st.last_nofb_interval interval
  end;
  if rate < st.min_rate *. (1. -. eps) then
    violate t ~time ~rule:"nofb-backoff"
      "flow %d: backed-off rate %.1f below floor %.1f" flow rate st.min_rate;
  st.last_nofb_interval <- interval

let check_feedback t (ev : Engine.Trace.event) =
  let time = ev.time in
  let flow, p, recv_rate, n_closed, avg =
    match ev.fields with
    | [
     ("flow", Engine.Trace.Int flow);
     ("p", Float p);
     ("recv_rate", Float recv_rate);
     ("n_closed", Int n_closed);
     ("avg_interval", Float avg);
    ] ->
        (flow, p, recv_rate, n_closed, avg)
    | _ ->
        ( ifield ev "flow" ~default:0,
          ffield ev "p" ~default:nan,
          ffield ev "recv_rate" ~default:0.,
          ifield ev "n_closed" ~default:0,
          ffield ev "avg_interval" ~default:0. )
  in
  if not (Float.is_finite p) || p < 0. || p > 1. then
    violate t ~time ~rule:"loss-rate-range"
      "flow %d: loss event rate %g outside [0, 1]" flow p
  else if n_closed > 0 && p <= 0. then
    violate t ~time ~rule:"loss-rate-range"
      "flow %d: %d loss intervals recorded but p = 0 (RFC 3448 5.4)" flow n_closed;
  if n_closed > 0 && avg <= 0. then
    violate t ~time ~rule:"loss-rate-range"
      "flow %d: average loss interval %g not positive over %d intervals" flow avg
      n_closed;
  if recv_rate < 0. then
    violate t ~time ~rule:"loss-rate-range" "flow %d: negative X_recv %g" flow
      recv_rate

let check_link t (ev : Engine.Trace.event) =
  let link = sfield ev "link" ~default:"?" in
  let st = link_state t link in
  (match ev.name with
  | "send" -> st.sent <- st.sent + 1
  | "deliver" -> st.delivered <- st.delivered + 1
  | "drop" -> st.dropped <- st.dropped + 1
  | _ -> ());
  if st.delivered + st.dropped > st.sent then
    violate t ~time:ev.time ~rule:"link-conservation"
      "link %s: delivered %d + dropped %d > offered %d" link st.delivered
      st.dropped st.sent

(* Strict per-queue arithmetic on a [link/queue] counter snapshot. Unlike
   link-conservation (an inequality, because packets may legitimately be
   in flight), queue counters admit an exact balance: every arrival either
   departed, was dropped, or is still queued. *)
let check_queue_snapshot t (ev : Engine.Trace.event) =
  let link = sfield ev "link" ~default:"?" in
  let arrivals = ifield ev "arrivals" ~default:0 in
  let departures = ifield ev "departures" ~default:0 in
  let drops = ifield ev "drops" ~default:0 in
  let queued = ifield ev "queued" ~default:0 in
  if arrivals <> departures + drops + queued then
    violate t ~time:ev.time ~rule:"queue-conservation"
      "link %s: arrivals %d <> departures %d + drops %d + queued %d" link
      arrivals departures drops queued

(* Supervised endpoint lifecycle (the wire library's Supervisor): every
   [wire/sup_transition] must continue from the last recorded state and
   take a legal edge. The relation is duplicated here as strings because
   this library cannot depend on the wire library; Supervisor.legal is
   the authoritative copy and the wire tests pin the two together. *)
let sup_legal from to_ =
  match (from, to_) with
  | "starting", ("established" | "degraded" | "backoff" | "closed") -> true
  | "established", ("degraded" | "closed") -> true
  | "degraded", ("established" | "backoff" | "closed") -> true
  | "backoff", ("starting" | "closed") -> true
  | _ -> false

let check_sup_transition t (ev : Engine.Trace.event) =
  let flow = ifield ev "flow" ~default:0 in
  let from = sfield ev "from" ~default:"?" in
  let to_ = sfield ev "to" ~default:"?" in
  (match Hashtbl.find_opt t.sup_states flow with
  | Some prev when prev <> from ->
      violate t ~time:ev.time ~rule:"wire-sup-legal"
        "flow %d: transition claims from=%s but last recorded state is %s"
        flow from prev
  | _ -> ());
  if not (sup_legal from to_) then
    violate t ~time:ev.time ~rule:"wire-sup-legal"
      "flow %d: illegal supervisor transition %s -> %s" flow from to_;
  Hashtbl.replace t.sup_states flow to_

let check_event t (ev : Engine.Trace.event) =
  t.n_events <- t.n_events + 1;
  if ev.cat = "sim" && ev.name = "created" then reset_run_state t
  else if ev.cat = "exp" then
    (* Runner bookkeeping (exp/job, exp/report): carries wall-clock fields
       and a zero timestamp, not simulation time — exempt from the
       time-monotone watermark. *)
    ()
  else begin
    if ev.time < t.last_time -. 1e-9 then
      violate t ~time:ev.time ~rule:"time-monotone"
        "%s/%s at %.9f after watermark %.9f" ev.cat ev.name ev.time t.last_time;
    if ev.time > t.last_time then t.last_time <- ev.time;
    match (ev.cat, ev.name) with
    | "tfrc", "rate_update" -> check_rate_update t ev
    | "tfrc", "nofb_expiry" -> check_nofb_expiry t ev
    | "tfrc", "feedback" -> check_feedback t ev
    | "tfrc", "start" -> check_start t ev
    | "link", "queue" -> check_queue_snapshot t ev
    | "link", _ -> check_link t ev
    | "wire", "sup_transition" -> check_sup_transition t ev
    | "topo", "loop" ->
        (* Netsim.Topology emits topo/loop only when a packet exhausts its
           TTL, which a shortest-path routing table can never cause — any
           such event is a routing bug, so the rule is simply "never". *)
        violate t ~time:ev.time ~rule:"topo-loop-free"
          "packet %d (flow %d) looped at node %d"
          (ifield ev "id" ~default:(-1))
          (ifield ev "flow" ~default:(-1))
          (ifield ev "node" ~default:(-1))
    | _ -> ()
  end

(* The same sink record is reused across attach/detach, which remove by
   physical equality. *)
let sink t : Engine.Trace.sink =
  match t.self_sink with
  | Some s -> s
  | None ->
      let s : Engine.Trace.sink = { emit = check_event t; close = ignore } in
      t.self_sink <- Some s;
      s

let attach t bus = Engine.Trace.add_sink bus (sink t)
let detach t bus = Engine.Trace.remove_sink bus (sink t)

let n_events t = t.n_events
let n_violations t = t.n_violations
let violations t = List.rev t.violations
let ok t = t.n_violations = 0

let report ppf t =
  if ok t then
    Format.fprintf ppf "invariants: %d trace events checked, 0 violations@."
      t.n_events
  else begin
    Format.fprintf ppf "invariants: %d trace events checked, %d VIOLATIONS@."
      t.n_events t.n_violations;
    List.iter
      (fun v ->
        Format.fprintf ppf "  [%.6f] %-18s %s@." v.time v.rule v.detail)
      (violations t);
    if t.n_violations > max_kept then
      Format.fprintf ppf "  ... and %d more@." (t.n_violations - max_kept)
  end
