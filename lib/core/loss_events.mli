(** Receiver-side loss detection and loss-event coalescing (Section 3.5.1).

    Sequence gaps become candidate losses; a candidate is confirmed once
    [ndupack] packets with higher sequence numbers have arrived (tolerating
    reordering). Confirmed losses are coalesced into {e loss events}: a lost
    packet starts a new event only if its send time is more than one RTT
    after the send time of the packet that started the previous event —
    losses within the same round-trip count as one congestion signal, which
    is the loss-event (rather than loss-fraction) measurement that
    distinguishes TFRC.

    Send times are interpolated between the timestamps of the surrounding
    arrived packets. Closed intervals are pushed into the supplied
    {!Loss_intervals} history and the open interval is kept up to date. *)

type t

val create : ?ndupack:int (** default 3 *) -> unit -> t

type outcome = {
  new_events : int;  (** loss events that started due to this arrival *)
  first_loss : bool;
      (** [true] when this arrival confirmed the first loss ever; the
          caller should seed the interval history (Section 3.4.1) before the
          next estimate *)
}

(** [on_packet t ~seq ~sent_at ~rtt ~intervals] processes a data-packet
    arrival. [rtt] is the receiver's current estimate of the flow's
    round-trip time (piggybacked on data packets by the sender). *)
val on_packet :
  t -> seq:int -> sent_at:float -> rtt:float -> intervals:Loss_intervals.t -> outcome

(** Highest sequence number seen so far; -1 initially. *)
val max_seq : t -> int

(** [seen_before t ~seq] is [true] when [seq] is at or below the frontier
    and not an outstanding candidate hole: the arrival is a duplicate (or a
    straggler already confirmed lost) and must not be processed again —
    duplicated packets would otherwise inflate the measured receive rate
    and stragglers would corrupt the interval history. *)
val seen_before : t -> seq:int -> bool

(** [on_marked t ~seq ~sent_at ~rtt ~intervals] registers an ECN
    congestion-experienced mark on an arrived packet: it is coalesced into
    loss events exactly like a loss (the paper's Section 7 outlook;
    RFC 5348 treats marks as congestion events), but no packet was
    dropped. *)
val on_marked :
  t -> seq:int -> sent_at:float -> rtt:float -> intervals:Loss_intervals.t -> outcome

(** Total packets confirmed lost (not loss events). *)
val lost_packets : t -> int

(** Total ECN marks registered. *)
val marked_packets : t -> int

(** Total loss events started. *)
val loss_events : t -> int

(** [true] once any loss event has been recorded. *)
val in_loss : t -> bool
