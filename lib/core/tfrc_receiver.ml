type t = {
  rt : Engine.Runtime.t;
  config : Tfrc_config.t;
  flow : int;
  transmit : Netsim.Packet.handler;
  intervals : Loss_intervals.t;
  detector : Loss_events.t;
  mutable rtt : float; (* sender's estimate, piggybacked on data *)
  mutable last_data_sent_at : float; (* timestamp echo *)
  mutable last_data_arrival : float;
  mutable bytes_since_fb : float;
  mutable last_fb_time : float;
  mutable prev_recv_rate : float;
  mutable packets : int;
  mutable bytes : int;
  mutable feedbacks : int;
  mutable fb_seq : int;
  mutable duplicates : int; (* arrivals discarded as already seen *)
  mutable corrupted : int; (* arrivals discarded as damaged *)
  mutable running : bool;
}

let rec create rt ~config ~flow ~transmit () =
  let t =
    {
      rt;
      config;
      flow;
      transmit;
      intervals =
        Loss_intervals.create ~n:config.Tfrc_config.n_intervals
          ~discounting:config.Tfrc_config.history_discounting
          ~discount_threshold:config.Tfrc_config.discount_threshold
          ~constant_weights:config.Tfrc_config.constant_weights ();
      detector = Loss_events.create ~ndupack:config.Tfrc_config.ndupack ();
      rtt = config.Tfrc_config.initial_rtt;
      last_data_sent_at = 0.;
      last_data_arrival = 0.;
      bytes_since_fb = 0.;
      last_fb_time = Engine.Runtime.now rt;
      prev_recv_rate = 0.;
      packets = 0;
      bytes = 0;
      feedbacks = 0;
      fb_seq = 0;
      duplicates = 0;
      corrupted = 0;
      running = true;
    }
  in
  (* Periodic feedback: once per RTT if any data arrived in the interval. *)
  let rec tick () =
    if t.running then begin
      if t.bytes_since_fb > 0. then send_feedback t;
      ignore (Engine.Runtime.after rt t.rtt tick)
    end
  in
  ignore (Engine.Runtime.after rt t.rtt tick);
  t

and send_feedback t =
  let now = Engine.Runtime.now t.rt in
  let elapsed = now -. t.last_fb_time in
  let recv_rate =
    if elapsed > 0. then t.bytes_since_fb /. elapsed else t.prev_recv_rate
  in
  t.prev_recv_rate <- recv_rate;
  t.bytes_since_fb <- 0.;
  t.last_fb_time <- now;
  t.feedbacks <- t.feedbacks + 1;
  t.fb_seq <- t.fb_seq + 1;
  let avg = Loss_intervals.average t.intervals in
  let p = Loss_intervals.rate_of_average avg in
  let tr = Engine.Runtime.trace t.rt in
  if Engine.Trace.active tr then
    Engine.Trace.emit tr ~time:now ~cat:"tfrc" ~name:"feedback"
      [
        ("flow", Engine.Trace.Int t.flow);
        ("p", Engine.Trace.Float p);
        ("recv_rate", Engine.Trace.Float recv_rate);
        ("n_closed", Engine.Trace.Int (Loss_intervals.n_closed t.intervals));
        ("avg_interval", Engine.Trace.Float (Option.value avg ~default:0.));
      ];
  let pkt =
    Netsim.Packet.make t.rt ~flow:t.flow ~seq:t.fb_seq
      ~size:t.config.Tfrc_config.feedback_size ~now
      (Netsim.Packet.Tfrc_feedback
         {
           p;
           recv_rate;
           ts_echo = t.last_data_sent_at;
           ts_delay = now -. t.last_data_arrival;
         })
  in
  t.transmit pkt

(* Synthetic first interval: the loss interval that would make the control
   equation produce half the rate at which data was arriving when the first
   loss occurred (Section 3.4.1). *)
let seed_history t =
  let now = Engine.Runtime.now t.rt in
  let elapsed = now -. t.last_fb_time in
  let recent_rate =
    if t.bytes_since_fb > 0. && elapsed > 1e-9 then t.bytes_since_fb /. elapsed
    else t.prev_recv_rate
  in
  let s = t.config.Tfrc_config.packet_size in
  let target = Float.max (float_of_int s /. t.rtt) (recent_rate /. 2.) in
  let p =
    Response_function.inverse t.config.Tfrc_config.response ~s ~r:t.rtt
      ~t_rto:(t.config.Tfrc_config.t_rto_factor *. t.rtt)
      ~rate:target
  in
  let interval = Float.max 1. (1. /. Float.max 1e-8 p) in
  if Loss_intervals.n_closed t.intervals = 0 then
    Loss_intervals.seed t.intervals ~interval

let recv t (pkt : Netsim.Packet.t) =
  match pkt.payload with
  | Tfrc_data _ when pkt.corrupted ->
      (* Checksum failure: the packet is gone as far as the protocol is
         concerned; the sequence hole it leaves behind is detected and
         charged as loss by the normal gap machinery. *)
      t.corrupted <- t.corrupted + 1
  | Tfrc_data _ when Loss_events.seen_before t.detector ~seq:pkt.seq ->
      (* Duplicate (or a straggler already written off as lost): counting
         it again would inflate recv_rate and feed the loss detector a
         sequence number it has already resolved. *)
      t.duplicates <- t.duplicates + 1
  | Tfrc_data { rtt } ->
      let now = Engine.Runtime.now t.rt in
      t.packets <- t.packets + 1;
      t.bytes <- t.bytes + pkt.size;
      t.bytes_since_fb <- t.bytes_since_fb +. float_of_int pkt.size;
      if rtt > 0. then t.rtt <- rtt;
      t.last_data_sent_at <- pkt.sent_at;
      t.last_data_arrival <- now;
      let outcome =
        Loss_events.on_packet t.detector ~seq:pkt.seq ~sent_at:pkt.sent_at
          ~rtt:t.rtt ~intervals:t.intervals
      in
      let outcome =
        if t.config.Tfrc_config.ecn && pkt.ecn_marked then begin
          let m =
            Loss_events.on_marked t.detector ~seq:pkt.seq ~sent_at:pkt.sent_at
              ~rtt:t.rtt ~intervals:t.intervals
          in
          {
            Loss_events.new_events = outcome.new_events + m.new_events;
            first_loss = outcome.first_loss || m.first_loss;
          }
        end
        else outcome
      in
      if outcome.first_loss && t.config.Tfrc_config.slow_start then
        seed_history t;
      if outcome.new_events > 0 && t.config.Tfrc_config.feedback_on_loss then
        send_feedback t
  | Data | Tcp_ack _ | Tfrc_feedback _ -> ()

let recv t = recv t
let loss_event_rate t = Loss_intervals.loss_event_rate t.intervals
let intervals t = t.intervals
let detector t = t.detector
let packets_received t = t.packets
let bytes_received t = t.bytes
let feedbacks_sent t = t.feedbacks
let duplicates_discarded t = t.duplicates
let corrupted_discarded t = t.corrupted
let stop t = t.running <- false
