(** The Average Loss Interval method (Section 3.3) with history discounting.

    Maintains the last [n] closed loss intervals (packet counts between
    consecutive loss-event starts). The estimate is
    [max(s_hat, s_hat_new)] where [s_hat] weights intervals 1..n and
    [s_hat_new] weights intervals 0..n-1 (interval 0 being the still-open
    interval since the last loss), with weights 1,1,1,1,0.8,0.6,0.4,0.2 for
    n = 8.

    History discounting ([FHPW00] / RFC 5348 5.5): when the open interval
    exceeds twice the average, older intervals' weights are smoothly
    discounted by a factor [2*avg / s0], floored at [discount_threshold];
    the factor is locked into the history when the open interval finally
    closes. *)

type t

val create :
  ?n:int (** history size, default 8 *) ->
  ?discounting:bool (** default true *) ->
  ?discount_threshold:float (** default 0.25 *) ->
  ?constant_weights:bool
    (** all weights 1 instead of the decreasing tail; for the Figure 18
        comparison. Default false. *) ->
  unit ->
  t

(** [weights ~n ~constant] is the weight vector w_1..w_n of Section 3.3. *)
val weights : n:int -> constant:bool -> float array

(** [seed t ~interval] installs a synthetic first interval; used when slow
    start terminates (Section 3.4.1). Only valid while the history is
    empty. *)
val seed : t -> interval:float -> unit

(** [record_interval t ~length] closes the open interval: [length] is the
    packet distance between the previous loss-event start and the new one.
    Resets the open-interval length to 0. *)
val record_interval : t -> length:float -> unit

(** [set_open_interval t ~packets] updates the length of the interval since
    the last loss event (the paper's s_0). *)
val set_open_interval : t -> packets:float -> unit

val open_interval : t -> float

(** Number of closed intervals stored (at most n). *)
val n_closed : t -> int

(** [average t] is the estimated average loss interval in packets, or
    [None] while no loss has been recorded. *)
val average : t -> float option

(** [rate_of_average avg] maps an {!average} result to a loss event rate:
    [1 / avg] clamped to [0, 1], or 0. for [None]. Exposed so a caller that
    already holds the average (an O(n) computation) can derive the rate
    without recomputing it. *)
val rate_of_average : float option -> float

(** [loss_event_rate t] is [rate_of_average (average t)]. *)
val loss_event_rate : t -> float

(** [mean_closed t] is the plain weighted mean over closed intervals only
    (no s_0 rule, no discounting); exposed for tests and for the Figure 18
    predictor study. *)
val mean_closed : t -> float option
