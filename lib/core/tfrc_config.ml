type t = {
  packet_size : int;
  feedback_size : int;
  n_intervals : int;
  history_discounting : bool;
  discount_threshold : float;
  constant_weights : bool;
  rtt_gain : float;
  delay_gain : bool;
  t_rto_factor : float;
  response : Response_function.kind;
  initial_rtt : float;
  initial_nofb_timeout : float;
  ndupack : int;
  slow_start : bool;
  min_rate : float;
  feedback_on_loss : bool;
  ecn : bool;
  burst_pkts : int;
  rate_validation : bool;
  t_mbi : float;
  slow_restart : bool;
}

let validate t =
  let err fmt = Printf.ksprintf invalid_arg fmt in
  if t.packet_size <= 0 then
    err "Tfrc_config: packet_size must be positive (got %d)" t.packet_size;
  if t.feedback_size <= 0 then
    err "Tfrc_config: feedback_size must be positive (got %d)" t.feedback_size;
  if t.n_intervals < 1 then
    err "Tfrc_config: n_intervals must be at least 1 (got %d)" t.n_intervals;
  if t.discount_threshold <= 0. || t.discount_threshold > 1. then
    err "Tfrc_config: discount_threshold must be in (0, 1] (got %g)"
      t.discount_threshold;
  if t.rtt_gain <= 0. || t.rtt_gain > 1. then
    err "Tfrc_config: rtt_gain must be in (0, 1] (got %g)" t.rtt_gain;
  if t.t_rto_factor <= 0. then
    err "Tfrc_config: t_rto_factor must be positive (got %g)" t.t_rto_factor;
  if t.initial_rtt <= 0. then
    err "Tfrc_config: initial_rtt must be positive (got %g)" t.initial_rtt;
  if t.initial_nofb_timeout <= 0. then
    err "Tfrc_config: initial_nofb_timeout must be positive (got %g)"
      t.initial_nofb_timeout;
  if t.ndupack < 1 then
    err "Tfrc_config: ndupack must be at least 1 (got %d)" t.ndupack;
  if t.min_rate <= 0. then
    err "Tfrc_config: min_rate must be positive (got %g)" t.min_rate;
  if t.burst_pkts < 1 then
    err "Tfrc_config: burst_pkts must be at least 1 (got %d)" t.burst_pkts;
  if t.t_mbi <= 0. then
    err "Tfrc_config: t_mbi must be positive (got %g)" t.t_mbi;
  t

let default ?(packet_size = 1000) ?(n_intervals = 8) ?(history_discounting = true)
    ?(constant_weights = false) ?(rtt_gain = 0.1) ?(delay_gain = true)
    ?(t_rto_factor = 4.) ?(response = Response_function.Pftk)
    ?(initial_rtt = 0.5) ?(initial_nofb_timeout = 2.) ?(slow_start = true)
    ?(feedback_on_loss = true)
    ?(ndupack = 3) ?(ecn = false) ?(burst_pkts = 1)
    ?(rate_validation = false) ?min_rate ?(t_mbi = 64.) ?(slow_restart = true)
    () =
  let min_rate =
    match min_rate with
    | Some r -> r
    | None -> float_of_int packet_size /. 64.
  in
  validate
    {
      packet_size;
      feedback_size = 40;
      n_intervals;
      history_discounting;
      discount_threshold = 0.25;
      constant_weights;
      rtt_gain;
      delay_gain;
      t_rto_factor;
      response;
      initial_rtt;
      initial_nofb_timeout;
      ndupack;
      slow_start;
      min_rate;
      feedback_on_loss;
      ecn;
      burst_pkts;
      rate_validation;
      t_mbi;
      slow_restart;
    }
