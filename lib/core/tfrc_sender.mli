(** TFRC sender (Section 3.2).

    Rate-based transmission: packets are paced at the interpacket interval
    [s / T * sqrt(R0) / M] (the Section 3.4 stabilization; plain [s / T]
    when [delay_gain] is off). On each receiver feedback the sender updates
    its RTT estimate and sets the allowed rate from the control equation —
    "decrease to T" semantics — or, while loss-free, doubles the rate per
    RTT capped at twice the reported receive rate (slow start). A
    no-feedback timer halves the rate when the receiver falls silent for
    [max(4R, 2s/T)].

    Robustness under feedback loss (RFC 3448 section 4.4): repeated
    no-feedback expirations halve the rate down to
    {!Tfrc_config.t.min_rate}, the timer interval growing with each halving
    up to {!Tfrc_config.t.t_mbi}; when feedback finally returns after such
    an outage, {!Tfrc_config.t.slow_restart} caps the restored rate at
    [max(2 * recv_rate, s/R)] — the sender ramps back up from what the
    receiver verifiably gets, never jumping to a rate computed from stale
    pre-outage state. Corrupted feedback packets are discarded. *)

type t

(** [create rt ~config ~flow ~transmit ()] builds a sender driven by the
    sans-IO runtime [rt] — {!Engine.Sim.runtime} for simulation, the wire
    loop's runtime for real time. The module contains no scheduler- or
    IO-specific code. *)
val create :
  Engine.Runtime.t ->
  config:Tfrc_config.t ->
  flow:int ->
  transmit:Netsim.Packet.handler ->
  unit ->
  t

(** Feed feedback packets here. *)
val recv : t -> Netsim.Packet.handler

val start : t -> at:float -> unit
val stop : t -> unit

(** Current allowed sending rate, bytes/s. *)
val rate : t -> float

(** Current allowed rate in packets per RTT. *)
val rate_pkts_per_rtt : t -> float

(** Smoothed RTT estimate. *)
val rtt : t -> float

(** Loss event rate from the most recent feedback. *)
val loss_event_rate : t -> float

val in_slow_start : t -> bool
val packets_sent : t -> int
val bytes_sent : t -> int
val feedbacks_received : t -> int

(** Total no-feedback timer expirations; monotone over a run. *)
val no_feedback_expirations : t -> int

(** Expirations since the last feedback arrived: positive while the sender
    is cut off from the receiver, reset to 0 by each feedback. *)
val expiries_since_feedback : t -> int

(** [on_rate_update t f] registers [f] to run after every rate
    recalculation (each feedback and each no-feedback expiry), with the
    current virtual time, allowed rate (bytes/s), smoothed RTT and reported
    loss event rate. *)
val on_rate_update : t -> (float -> rate:float -> rtt:float -> p:float -> unit) -> unit

(** [set_app_limit t (Some r)] makes the application limit its sending pace
    to [r] bytes/s even when the allowed rate is higher (a quiescent or
    CBR-like source); [None] removes the limit. With
    {!Tfrc_config.t.rate_validation} the allowed rate then cannot grow past
    twice the achieved rate. *)
val set_app_limit : t -> float option -> unit

val app_limit : t -> float option
