type hole = { seq : int; est_sent : float }

type t = {
  ndupack : int;
  mutable max_seq : int;
  mutable max_seq_sent : float; (* send timestamp of max_seq *)
  mutable pending : hole list; (* candidate losses, ascending seq *)
  mutable event_start_seq : int; (* -1 when no loss event yet *)
  mutable event_start_sent : float;
  mutable lost : int;
  mutable marked : int;
  mutable events : int;
}

type outcome = { new_events : int; first_loss : bool }

let create ?(ndupack = 3) () =
  {
    ndupack;
    max_seq = -1;
    max_seq_sent = 0.;
    pending = [];
    event_start_seq = -1;
    event_start_sent = 0.;
    lost = 0;
    marked = 0;
    events = 0;
  }

let max_seq t = t.max_seq

(* A sequence number at or below the frontier that is no longer a candidate
   hole has already been accounted for — either it arrived earlier (this is
   a duplicate) or it was confirmed lost (a pathologically late straggler).
   Feeding it to [on_packet] again would double-count bytes and, worse,
   never fabricate-proof the interval state; callers should discard. *)
let seen_before t ~seq =
  seq <= t.max_seq && not (List.exists (fun h -> h.seq = seq) t.pending)
let lost_packets t = t.lost
let marked_packets t = t.marked
let loss_events t = t.events
let in_loss t = t.event_start_seq >= 0

(* A congestion signal (confirmed loss or ECN mark): fold into the current
   loss event or start a new one. Returns 1 if a new event started. *)
let process_signal t ~intervals ~rtt (h : hole) =
  if t.event_start_seq < 0 then begin
    (* First loss ever: open the first interval. Seeding of the synthetic
       history entry is the caller's job. *)
    t.event_start_seq <- h.seq;
    t.event_start_sent <- h.est_sent;
    t.events <- t.events + 1;
    1
  end
  else if h.est_sent > t.event_start_sent +. Float.max 0. rtt then begin
    let length = float_of_int (h.seq - t.event_start_seq) in
    Loss_intervals.record_interval intervals ~length;
    t.event_start_seq <- h.seq;
    t.event_start_sent <- h.est_sent;
    t.events <- t.events + 1;
    1
  end
  else 0

let process_loss t ~intervals ~rtt (h : hole) =
  t.lost <- t.lost + 1;
  process_signal t ~intervals ~rtt h

(* An ECN congestion-experienced mark on an arrived packet: same loss-event
   coalescing as an actual loss, but nothing was dropped. *)
let on_marked t ~seq ~sent_at ~rtt ~intervals =
  t.marked <- t.marked + 1;
  let had_loss = in_loss t in
  let n = process_signal t ~intervals ~rtt { seq; est_sent = sent_at } in
  if in_loss t then
    Loss_intervals.set_open_interval intervals
      ~packets:(float_of_int (t.max_seq - t.event_start_seq));
  { new_events = n; first_loss = n > 0 && not had_loss }

let on_packet t ~seq ~sent_at ~rtt ~intervals =
  let new_events = ref 0 and first = ref false in
  if seq > t.max_seq then begin
    (* New holes between the previous maximum and this packet; interpolate
       their send times between the two surrounding timestamps. *)
    let gap = seq - t.max_seq in
    if t.max_seq >= 0 && gap > 1 then begin
      let dt = (sent_at -. t.max_seq_sent) /. float_of_int gap in
      let holes = ref [] in
      for missing = seq - 1 downto t.max_seq + 1 do
        holes :=
          { seq = missing;
            est_sent = t.max_seq_sent +. (dt *. float_of_int (missing - t.max_seq));
          }
          :: !holes
      done;
      t.pending <- t.pending @ !holes
    end;
    t.max_seq <- seq;
    t.max_seq_sent <- sent_at
  end
  else
    (* Late (reordered) arrival: rescue it from the candidate list. *)
    t.pending <- List.filter (fun h -> h.seq <> seq) t.pending;
  (* Confirm candidates that are ndupack below the frontier. *)
  let confirmed, still =
    List.partition (fun h -> h.seq <= t.max_seq - t.ndupack) t.pending
  in
  t.pending <- still;
  List.iter
    (fun h ->
      let had_loss = in_loss t in
      let n = process_loss t ~intervals ~rtt h in
      if n > 0 && not had_loss then first := true;
      new_events := !new_events + n)
    confirmed;
  (* Open interval length: sequence distance from the current event start to
     the highest packet seen. *)
  if in_loss t then
    Loss_intervals.set_open_interval intervals
      ~packets:(float_of_int (t.max_seq - t.event_start_seq));
  { new_events = !new_events; first_loss = !first }
