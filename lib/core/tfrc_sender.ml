type t = {
  rt : Engine.Runtime.t;
  config : Tfrc_config.t;
  flow : int;
  transmit : Netsim.Packet.handler;
  rtt_est : Rtt_estimator.t;
  mutable rate : float; (* allowed sending rate, bytes/s *)
  mutable p : float; (* loss event rate from the last feedback *)
  mutable slow_start : bool;
  mutable running : bool;
  mutable seq : int;
  mutable packets : int;
  mutable bytes : int;
  mutable feedbacks : int;
  mutable nofb_expiries : int;
  mutable expiries_since_fb : int; (* expirations since the last feedback *)
  mutable app_limit : float option; (* application ceiling on the pace, bytes/s *)
  mutable send_timer : Engine.Runtime.handle;
  mutable nofb_timer : Engine.Runtime.handle;
  mutable listeners : (float -> rate:float -> rtt:float -> p:float -> unit) list;
}

let create rt ~config ~flow ~transmit () =
  {
    rt;
    config;
    flow;
    transmit;
    rtt_est =
      Rtt_estimator.create ~gain:config.Tfrc_config.rtt_gain
        ~initial_rtt:config.Tfrc_config.initial_rtt
        ~t_rto_factor:config.Tfrc_config.t_rto_factor;
    rate =
      float_of_int config.Tfrc_config.packet_size /. config.Tfrc_config.initial_rtt;
    p = 0.;
    slow_start = config.Tfrc_config.slow_start;
    running = false;
    seq = 0;
    packets = 0;
    bytes = 0;
    feedbacks = 0;
    nofb_expiries = 0;
    expiries_since_fb = 0;
    app_limit = None;
    send_timer = Engine.Runtime.null_handle;
    nofb_timer = Engine.Runtime.null_handle;
    listeners = [];
  }

let s_bytes t = float_of_int t.config.Tfrc_config.packet_size

let tracing t = Engine.Trace.active (Engine.Runtime.trace t.rt)

let trace_ev t name fields =
  Engine.Trace.emit (Engine.Runtime.trace t.rt) ~time:(Engine.Runtime.now t.rt)
    ~cat:"tfrc" ~name
    (("flow", Engine.Trace.Int t.flow) :: fields)

let notify t =
  let now = Engine.Runtime.now t.rt in
  List.iter
    (fun f -> f now ~rate:t.rate ~rtt:(Rtt_estimator.rtt t.rtt_est) ~p:t.p)
    t.listeners

(* Pace at the allowed rate, unless the application asked for less. *)
let pacing_rate t =
  match t.app_limit with
  | Some limit -> Float.max t.config.Tfrc_config.min_rate (Float.min t.rate limit)
  | None -> t.rate

let interpacket_interval t =
  let base = s_bytes t /. pacing_rate t in
  if t.config.Tfrc_config.delay_gain && Rtt_estimator.has_sample t.rtt_est then
    base *. Rtt_estimator.delay_factor t.rtt_est
  else base

let rec send_packet t =
  if t.running then begin
    (* burst_pkts > 1: emit a small back-to-back burst every burst_pkts
       interpacket intervals (Section 4.1's fairness aid for small-window
       TCP competitors). The long-run rate is unchanged. *)
    for _ = 1 to t.config.Tfrc_config.burst_pkts do
      let pkt =
        Netsim.Packet.make t.rt ~ecn:t.config.Tfrc_config.ecn ~flow:t.flow
          ~seq:t.seq ~size:t.config.Tfrc_config.packet_size
          ~now:(Engine.Runtime.now t.rt)
          (Netsim.Packet.Tfrc_data { rtt = Rtt_estimator.rtt t.rtt_est })
      in
      t.seq <- t.seq + 1;
      t.packets <- t.packets + 1;
      t.bytes <- t.bytes + pkt.size;
      t.transmit pkt
    done;
    t.send_timer <-
      Engine.Runtime.after t.rt
        (float_of_int t.config.Tfrc_config.burst_pkts
        *. interpacket_interval t)
        (fun () -> send_packet t)
  end

(* The timer interval grows as the rate halves (2s/X doubles per expiry),
   an exponential backoff capped at t_mbi so a silenced sender still probes
   the path at least every t_mbi seconds (RFC 3448 section 4.4). Until a
   real RTT measurement exists the t_RTO term is only an assumption, so
   RFC 3448 sections 4.2/4.3 prescribe a flat initial timer instead
   ([initial_nofb_timeout], default 2 s). *)
let nofb_interval t =
  let rto_term =
    if Rtt_estimator.has_sample t.rtt_est then
      t.config.Tfrc_config.t_rto_factor *. Rtt_estimator.rtt t.rtt_est
    else t.config.Tfrc_config.initial_nofb_timeout
  in
  Float.min
    (Float.max rto_term (2. *. s_bytes t /. t.rate))
    t.config.Tfrc_config.t_mbi

let rec restart_nofb_timer t =
  Engine.Runtime.cancel t.nofb_timer;
  if t.running then
    t.nofb_timer <-
      Engine.Runtime.after t.rt (nofb_interval t) (fun () -> on_nofb_expiry t)

and on_nofb_expiry t =
  if t.running then begin
    t.nofb_expiries <- t.nofb_expiries + 1;
    t.expiries_since_fb <- t.expiries_since_fb + 1;
    t.rate <- Float.max (t.rate /. 2.) t.config.Tfrc_config.min_rate;
    notify t;
    restart_nofb_timer t;
    if tracing t then
      (* [interval] recomputes the interval just scheduled (nothing changed
         since); the checker validates the backoff ladder against the t_mbi
         announced in this flow's [tfrc/start] event. *)
      trace_ev t "nofb_expiry"
        [
          ("rate", Engine.Trace.Float t.rate);
          ("interval", Engine.Trace.Float (nofb_interval t));
          ("consecutive", Engine.Trace.Int t.expiries_since_fb);
        ]
  end

let on_feedback t ~p ~recv_rate ~ts_echo ~ts_delay =
  t.feedbacks <- t.feedbacks + 1;
  let prev_rate = t.rate in
  (* Slow restart: feedback arriving after no-feedback expirations reports
     on a path we backed away from — the loss rate and RTT it carries are
     stale. Don't jump back to the pre-outage rate; cap at twice what the
     receiver is actually getting now (at least one packet per RTT) and let
     subsequent reports ratchet the rate up. *)
  let recovering =
    t.config.Tfrc_config.slow_restart && t.expiries_since_fb > 0
  in
  t.expiries_since_fb <- 0;
  let now = Engine.Runtime.now t.rt in
  let rtt_sample = now -. ts_echo -. ts_delay in
  if rtt_sample > 0. then Rtt_estimator.sample t.rtt_est rtt_sample;
  let r = Rtt_estimator.rtt t.rtt_est in
  t.p <- p;
  if p <= 0. then begin
    (* Loss-free: slow start, doubling per RTT but no more than twice the
       rate the receiver reports actually arriving (Section 3.4.1). *)
    if t.slow_start then begin
      let doubled = Float.min (2. *. t.rate) (2. *. recv_rate) in
      t.rate <- Float.max t.rate doubled;
      t.rate <- Float.max t.rate (s_bytes t /. r)
    end
    else if recovering then
      (* Out of an outage with no loss on record: ramp from the backed-off
         rate instead of staying parked at the floor. *)
      t.rate <- Float.max t.rate (Float.min (2. *. t.rate) (2. *. recv_rate))
  end
  else begin
    t.slow_start <- false;
    let x_eq =
      Response_function.rate t.config.Tfrc_config.response
        ~s:t.config.Tfrc_config.packet_size ~r
        ~t_rto:(Rtt_estimator.t_rto t.rtt_est)
        ~p
    in
    (* "Decrease to T" (and increase directly to T): the damping already in
       p and R makes further damping counterproductive (Section 3.2). With
       rate validation the allowed rate additionally never exceeds twice
       what the receiver actually got — an application-limited sender
       cannot bank headroom (RFC 5348 4.3 / [HPF99]). *)
    let x_eq =
      if t.config.Tfrc_config.rate_validation && recv_rate > 0. then
        Float.min x_eq (2. *. recv_rate)
      else x_eq
    in
    t.rate <- Float.max x_eq t.config.Tfrc_config.min_rate
  end;
  if recovering then
    t.rate <-
      Float.max t.config.Tfrc_config.min_rate
        (Float.min t.rate (Float.max (2. *. recv_rate) (s_bytes t /. r)));
  notify t;
  restart_nofb_timer t;
  if tracing t then
    (* Per-flow constants (s, min_rate, rv, t_mbi) ride on the one-shot
       [tfrc/start] event, keeping this per-feedback record small. *)
    trace_ev t "rate_update"
      [
        ("rate", Engine.Trace.Float t.rate);
        ("prev_rate", Engine.Trace.Float prev_rate);
        ("recv_rate", Engine.Trace.Float recv_rate);
        ("p", Engine.Trace.Float p);
        ("rtt", Engine.Trace.Float r);
      ]

let recv t (pkt : Netsim.Packet.t) =
  if pkt.corrupted then ()
  else
    match pkt.payload with
    | Tfrc_feedback { p; recv_rate; ts_echo; ts_delay } ->
        if t.running then on_feedback t ~p ~recv_rate ~ts_echo ~ts_delay
    | Data | Tcp_ack _ | Tfrc_data _ -> ()

let recv t = recv t

let start t ~at =
  ignore
    (Engine.Runtime.at t.rt at (fun () ->
         t.running <- true;
         if tracing t then
           trace_ev t "start"
             [
               ("rate", Engine.Trace.Float t.rate);
               ("s", Engine.Trace.Float (s_bytes t));
               ("min_rate", Engine.Trace.Float t.config.Tfrc_config.min_rate);
               ("rv", Engine.Trace.Bool t.config.Tfrc_config.rate_validation);
               ("t_mbi", Engine.Trace.Float t.config.Tfrc_config.t_mbi);
             ];
         send_packet t;
         restart_nofb_timer t))

let stop t =
  t.running <- false;
  Engine.Runtime.cancel t.send_timer;
  Engine.Runtime.cancel t.nofb_timer

let rate t = t.rate
let rate_pkts_per_rtt t = t.rate *. Rtt_estimator.rtt t.rtt_est /. s_bytes t
let rtt t = Rtt_estimator.rtt t.rtt_est
let loss_event_rate t = t.p
let in_slow_start t = t.slow_start
let packets_sent t = t.packets
let bytes_sent t = t.bytes
let feedbacks_received t = t.feedbacks
let no_feedback_expirations t = t.nofb_expiries
let expiries_since_feedback t = t.expiries_since_fb
let on_rate_update t f = t.listeners <- f :: t.listeners

let set_app_limit t limit =
  (match limit with
  | Some l when l <= 0. -> invalid_arg "Tfrc_sender.set_app_limit: rate <= 0"
  | _ -> ());
  t.app_limit <- limit

let app_limit t = t.app_limit
