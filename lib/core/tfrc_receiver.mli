(** TFRC receiver (Section 3.3).

    Detects losses, coalesces them into loss events within one RTT,
    maintains the Average Loss Interval history, measures the receive rate,
    and reports feedback to the sender once per round-trip time (plus
    expedited feedback when a new loss event is detected). On the first
    loss event it seeds the interval history with the synthetic interval
    that the control equation associates with half the current receive rate
    (slow-start termination, Section 3.4.1).

    Hardened against a hostile path: duplicated packets and stragglers that
    were already written off are discarded without touching the receive
    rate or the loss detector (no fabricated loss events), and corrupted
    packets are discarded on arrival — the resulting sequence hole is then
    charged as an ordinary loss. Reordering within {!Tfrc_config.t.ndupack}
    packets is absorbed by the detector's candidate-hole machinery. *)

type t

(** [create rt ~config ~flow ~transmit ()] builds a receiver driven by the
    sans-IO runtime [rt] — {!Engine.Sim.runtime} for simulation, the wire
    loop's runtime for real time. *)
val create :
  Engine.Runtime.t ->
  config:Tfrc_config.t ->
  flow:int ->
  transmit:Netsim.Packet.handler (** feedback goes here *) ->
  unit ->
  t

(** Feed arriving data packets here. *)
val recv : t -> Netsim.Packet.handler

(** Current loss event rate estimate (0. while loss-free). *)
val loss_event_rate : t -> float

val intervals : t -> Loss_intervals.t
val detector : t -> Loss_events.t
val packets_received : t -> int
val bytes_received : t -> int
val feedbacks_sent : t -> int

(** Arrivals discarded as duplicates of already-processed sequence
    numbers. *)
val duplicates_discarded : t -> int

(** Arrivals discarded because the packet was corrupted in flight. *)
val corrupted_discarded : t -> int

(** Stops the feedback timer. *)
val stop : t -> unit
