(** Online RFC 3448 conformance checker.

    A {!Engine.Trace} sink that validates runtime invariants as trace
    events stream past, so any traced simulation doubles as a conformance
    audit. Attach to a bus (usually [Engine.Trace.default ()]), run, then
    inspect {!ok} / {!report}.

    Checked rules (rule name — RFC 3448/5348 reference):
    - [time-monotone] — trace timestamps never decrease within a
      simulation (scheduler fires in time order);
    - [sender-rate-bound] — §4.2/§4.3: a feedback-driven rate update stays
      within 2·X_recv under rate validation, and loss-free within
      max(previous rate, 2·X_recv, s/R);
    - [nofb-backoff] — §4.4: successive no-feedback expirations back off
      monotonically, capped at t_mbi, never dropping the rate below the
      configured floor;
    - [loss-rate-range] — §5.4: the reported loss event rate is in [0, 1],
      strictly positive once loss intervals exist, with a strictly positive
      average loss interval;
    - [link-conservation] — per link, deliveries + drops never exceed
      packets offered;
    - [queue-conservation] — a [link/queue] counter snapshot (emitted by
      {!Netsim.Link} at up/down transitions and via
      [Link.emit_queue_stats]) satisfies the strict balance
      arrivals = departures + drops + queued, exactly;
    - [topo-loop-free] — a [topo/loop] event (a packet exhausting its TTL
      in {!Netsim.Topology}) is always a violation: shortest-path routing
      tables cannot loop, so any occurrence is a routing bug.

    Per-flow constants the rules depend on (segment size, rate floor,
    rate-validation flag, t_mbi) are taken from the flow's one-shot
    [tfrc/start] event; until one is seen the checker assumes lenient
    defaults (no floor, no rate validation, infinite t_mbi) so a partial
    trace never false-positives on config-dependent rules. *)

type violation = { time : float; rule : string; detail : string }

type t

val create : unit -> t

(** The checker as a trace sink. The same sink value is returned every
    time, so bus removal by physical equality works. *)
val sink : t -> Engine.Trace.sink

(** [attach t bus] / [detach t bus] subscribe/unsubscribe the checker. *)
val attach : t -> Engine.Trace.t -> unit

val detach : t -> Engine.Trace.t -> unit

(** Feed one event directly (what the sink does); exposed for unit tests. *)
val check_event : t -> Engine.Trace.event -> unit

(** The [wire-sup-legal] transition relation over state names, exposed so
    the wire layer's own [legal] stays pinned to the checker's table. *)
val sup_legal : string -> string -> bool

(** Events seen since creation. *)
val n_events : t -> int

(** Total violations, including ones beyond the kept-detail cap. *)
val n_violations : t -> int

(** Detailed violations in detection order (first 100 kept). *)
val violations : t -> violation list

val ok : t -> bool

(** Human-readable audit summary; lists each kept violation when not ok. *)
val report : Format.formatter -> t -> unit
