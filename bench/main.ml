(* Benchmark harness.

   Default mode regenerates every table and figure of the paper (scaled-down
   parameters; pass --full for paper-scale runs, --only fig6 for one
   experiment, -j N to run each experiment's job grid on N worker domains).
   Pass --micro to run the Bechamel micro-benchmarks of the hot paths
   instead (event heap, ALI update, RED decision, response function, full
   dumbbell step), --speedup to emit the parallel_speedup JSON line
   (quick `all` wall clock at -j 1 vs -j 4), or --fuzz to emit the
   fuzz_throughput JSON line (end-to-end chaos-scenario cases/sec). *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  (* Event heap: push+pop cycles on a warm heap. *)
  let heap_test =
    Test.make ~name:"event_queue push/pop"
      (Staged.stage (fun () ->
           let q = Engine.Event_queue.create () in
           for i = 0 to 255 do
             Engine.Event_queue.push q ~time:(float_of_int (i * 7919 mod 997)) i
           done;
           let rec drain () =
             match Engine.Event_queue.pop q with
             | Some _ -> drain ()
             | None -> ()
           in
           drain ()))
  in
  let ali_test =
    Test.make ~name:"average loss interval update"
      (Staged.stage (fun () ->
           let t = Tfrc.Loss_intervals.create () in
           for i = 1 to 64 do
             Tfrc.Loss_intervals.set_open_interval t
               ~packets:(float_of_int (i * 13 mod 200));
             Tfrc.Loss_intervals.record_interval t
               ~length:(float_of_int (50 + (i mod 100)));
             ignore (Tfrc.Loss_intervals.average t)
           done))
  in
  let response_test =
    Test.make ~name:"response function (PFTK)"
      (Staged.stage (fun () ->
           let acc = ref 0. in
           for i = 1 to 100 do
             let p = float_of_int i /. 101. in
             acc :=
               !acc
               +. Tfrc.Response_function.rate Tfrc.Response_function.Pftk
                    ~s:1000 ~r:0.1 ~t_rto:0.4 ~p
           done;
           ignore !acc))
  in
  let red_test =
    Test.make ~name:"RED enqueue/dequeue"
      (Staged.stage (fun () ->
           let now = ref 0. in
           let sim = Engine.Sim.create () in
           let q =
             Netsim.Red.create
               ~params:(Netsim.Red.params ~min_th:5. ~max_th:15. ~limit_pkts:50 ())
               ~now:(fun () -> !now)
               ~ptc:1000.
           in
           for i = 0 to 199 do
             now := float_of_int i *. 1e-3;
             let pkt =
               Netsim.Packet.make (Engine.Sim.runtime sim) ~flow:1 ~seq:i ~size:1000 ~now:!now
                 Netsim.Packet.Data
             in
             ignore (q.Netsim.Queue_disc.enqueue pkt);
             if i mod 2 = 0 then ignore (q.Netsim.Queue_disc.dequeue ())
           done))
  in
  let sim_test =
    Test.make ~name:"1s dumbbell sim (1 TFRC + 1 TCP)"
      (Staged.stage (fun () ->
           let sim = Engine.Sim.create () in
           let db =
             Netsim.Dumbbell.create (Engine.Sim.runtime sim)
               ~bandwidth:(Engine.Units.mbps 2.)
               ~delay:0.01
               ~queue:(Netsim.Dumbbell.Droptail_q 20)
               ()
           in
           let tcp =
             Exp.Scenario.attach_tcp db ~flow:1 ~rtt_base:0.05
               ~config:Tcpsim.Tcp_common.ns_sack
           in
           Tcpsim.Tcp_sender.start tcp.tcp_sender ~at:0.;
           let tfrc =
             Exp.Scenario.attach_tfrc db ~flow:2 ~rtt_base:0.05
               ~config:(Tfrc.Tfrc_config.default ())
           in
           Tfrc.Tfrc_sender.start tfrc.tfrc_sender ~at:0.;
           Engine.Sim.run sim ~until:1.0))
  in
  let tests =
    Test.make_grouped ~name:"tfrc"
      [ heap_test; ali_test; response_test; red_test; sim_test ]
  in
  let benchmark () =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg instances tests
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    results

(* Trace-layer overhead: the same fig2 staircase run twice, bare and with
   the invariant checker subscribed to the default bus (so every call site
   allocates and emits its events). Best-of-3 wall clock keeps scheduler
   noise out of the ratio; acceptance wants the overhead under ~5%. *)
let trace_overhead_json () =
  let time_run f =
    ignore (f ()) (* warm up allocators and code paths *);
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  (* A longer run than the figure itself uses: the 16 s staircase finishes
     in under a millisecond, below timer noise. *)
  let run () = Exp.Fig2.samples ~duration:240. () in
  let plain_s = time_run run in
  let checker = Tfrc.Invariants.create () in
  let bus = Engine.Trace.default () in
  Tfrc.Invariants.attach checker bus;
  let checked_s =
    Fun.protect ~finally:(fun () -> Tfrc.Invariants.detach checker bus)
      (fun () -> time_run run)
  in
  Printf.sprintf
    "{\"bench\":\"trace_overhead\",\"scenario\":\"fig2\",\"plain_s\":%.4f,\"checked_s\":%.4f,\"overhead_pct\":%.2f,\"events\":%d,\"violations\":%d}"
    plain_s checked_s
    ((checked_s -. plain_s) /. plain_s *. 100.)
    (Tfrc.Invariants.n_events checker)
    (Tfrc.Invariants.n_violations checker)

(* Parallel-runner speedup: wall clock for the whole quick `all` sweep at
   -j 1 vs -j 4, output discarded. The ratio reflects the machine it runs
   on — on a single hardware thread expect ~1.0; the runner's determinism
   guarantee is what makes the comparison meaningful (same work, same
   results, different scheduling). *)
let parallel_speedup_json ~todo ~full ~seed =
  let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let time_all ~j =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun e ->
        ignore
          (Exp.Runner.run_experiment ~j ~full ~seed e null_ppf
            : Exp.Runner.report))
      todo;
    Unix.gettimeofday () -. t0
  in
  let j1_s = time_all ~j:1 in
  let j4_s = time_all ~j:4 in
  Printf.sprintf
    "{\"bench\":\"parallel_speedup\",\"seed\":%d,\"full\":%b,\"recommended_domains\":%d,\"j1_s\":%.2f,\"j4_s\":%.2f,\"speedup\":%.2f}"
    seed full
    (Domain.recommended_domain_count ())
    j1_s j4_s (j1_s /. j4_s)

(* Checkpoint-layer overhead: the fig5 quick grid (many small cells, so
   per-cell fsync cost dominates rather than simulation time) run plain and
   with an fsync'd checkpoint store attached. Best-of-3 wall clock; the
   absolute per-cell cost matters more than the percentage, since big grids
   amortize the same number of fsyncs over much longer cells. *)
let checkpoint_overhead_json ~seed =
  let e =
    match Exp.Registry.find "fig5" with
    | Some e -> e
    | None -> failwith "fig5 missing from registry"
  in
  let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let cells = List.length (e.Exp.Registry.jobs ~full:false) in
  let time_run f =
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let plain () =
    (Exp.Runner.run_experiment ~full:false ~seed e null_ppf
      : Exp.Runner.report)
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "tfrc_bench_ckpt" in
  let grid = Exp.Registry.grid_id e ~full:false ~seed in
  let checkpointed () =
    (* resume:false truncates, so every timed run pays the full write load. *)
    let ck = Exp.Checkpoint.open_store ~dir ~grid ~resume:false in
    Fun.protect
      ~finally:(fun () -> Exp.Checkpoint.close ck)
      (fun () ->
        (Exp.Runner.run_experiment ~checkpoint:ck ~full:false ~seed e null_ppf
          : Exp.Runner.report))
  in
  let plain_s = time_run plain in
  let ckpt_s = time_run checkpointed in
  (try Sys.remove (Filename.concat dir (grid ^ ".jsonl")) with Sys_error _ -> ());
  Printf.sprintf
    "{\"bench\":\"checkpoint_overhead\",\"scenario\":\"fig5\",\"cells\":%d,\"plain_s\":%.4f,\"checkpointed_s\":%.4f,\"overhead_pct\":%.2f,\"per_cell_ms\":%.3f}"
    cells plain_s ckpt_s
    ((ckpt_s -. plain_s) /. plain_s *. 100.)
    ((ckpt_s -. plain_s) /. float_of_int cells *. 1e3)

(* End-to-end fuzzer throughput: generate + run + judge a fixed block of
   chaos scenarios (each executed twice for the determinism oracle) and
   report cases/sec. Scenario cost varies wildly with the drawn duration
   and flow count, so a fixed (seed, cases) block is what makes the
   number comparable across runs. *)
let fuzz_throughput_json () =
  let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let cfg =
    {
      Fuzz.Driver.cases = 24;
      seed = 42;
      j = 1;
      shrink = false;
      mutate = false;
      artifacts = None;
      max_shrink_runs = 0;
    }
  in
  ignore (Fuzz.Driver.run ~out:null_ppf cfg : Fuzz.Driver.summary);
  let t0 = Unix.gettimeofday () in
  let s = Fuzz.Driver.run ~out:null_ppf cfg in
  let wall = Unix.gettimeofday () -. t0 in
  Printf.sprintf
    "{\"bench\":\"fuzz_throughput\",\"seed\":%d,\"cases\":%d,\"failed\":%d,\"wall_s\":%.3f,\"cases_per_s\":%.2f,\"events\":%d,\"delivered\":%d}"
    cfg.Fuzz.Driver.seed cfg.Fuzz.Driver.cases s.Fuzz.Driver.failed wall
    (float_of_int cfg.Fuzz.Driver.cases /. wall)
    s.Fuzz.Driver.events s.Fuzz.Driver.delivered

(* Many-flows scale benchmark: hold N concurrent flows, each driving a
   periodic send timer (20–200 ms period derived from the flow id) plus a
   no-feedback-style watchdog that is cancelled and re-armed on every send
   — the cancel churn is what makes this representative of TFRC/TCP timer
   behavior, and what stresses the schedulers differently (the heap sweeps
   cancelled entries in O(n log n) bulk passes; the wheel prunes buckets).
   Each send allocates a packet from a freelist pool and folds a sample
   into a struct-of-arrays accumulator, so the measured loop exercises all
   three scale paths from ROADMAP item 1. The simulation runs in virtual-
   time chunks until the wall budget expires; events/sec is the score.
   Run once per backend at identical parameters and report the ratio. *)
let many_flows_run ~scheduler ~flows ~wall =
  let sim = Engine.Sim.create ~scheduler () in
  let pool = Netsim.Packet.Pool.create () in
  let soa = Stats.Soa.create flows in
  let events = ref 0 in
  let watchdog = Array.make (max flows 1) Engine.Sim.null_handle in
  let period i = 0.020 +. (float_of_int (i mod 181) *. 1e-3) in
  let rec fire i () =
    incr events;
    let now = Engine.Sim.now sim in
    let p =
      Netsim.Packet.Pool.alloc pool (Engine.Sim.runtime sim) ~flow:i ~seq:!events ~size:1000 ~now
        Netsim.Packet.Data
    in
    Stats.Soa.add soa i (float_of_int p.Netsim.Packet.size);
    Netsim.Packet.Pool.release pool p;
    Engine.Sim.cancel watchdog.(i);
    watchdog.(i) <- Engine.Sim.after sim (4. *. period i) ignore;
    ignore (Engine.Sim.after sim (period i) (fire i))
  in
  for i = 0 to flows - 1 do
    (* Stagger starts across one period so the queue never sees a single
       thundering-herd timestamp. *)
    ignore (Engine.Sim.at sim (period i *. float_of_int (i mod 7) /. 7.) (fire i))
  done;
  let t0 = Unix.gettimeofday () in
  let horizon = ref 0. in
  while Unix.gettimeofday () -. t0 < wall do
    horizon := !horizon +. 0.05;
    Engine.Sim.run sim ~until:!horizon
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  (!events, wall_s, Engine.Sim.pending_events sim, !horizon)

let many_flows_json ~flows ~wall =
  let wheel_events, wheel_s, pending, vtime =
    many_flows_run ~scheduler:`Wheel ~flows ~wall
  in
  let heap_events, heap_s, _, _ = many_flows_run ~scheduler:`Heap ~flows ~wall in
  let wheel_eps = float_of_int wheel_events /. wheel_s in
  let heap_eps = float_of_int heap_events /. heap_s in
  Printf.sprintf
    "{\"bench\":\"many_flows\",\"flows\":%d,\"wall_budget_s\":%.2f,\"wheel_events\":%d,\"wheel_events_per_s\":%.0f,\"heap_events\":%d,\"heap_events_per_s\":%.0f,\"speedup\":%.2f,\"pending_events\":%d,\"virtual_time_s\":%.2f}"
    flows wall wheel_events wheel_eps heap_events heap_eps
    (wheel_eps /. heap_eps) pending vtime

let () =
  let full = Array.exists (( = ) "--full") Sys.argv in
  let run_micro = Array.exists (( = ) "--micro") Sys.argv in
  let run_speedup = Array.exists (( = ) "--speedup") Sys.argv in
  let run_fuzz = Array.exists (( = ) "--fuzz") Sys.argv in
  let run_many_flows = Array.exists (( = ) "--many-flows") Sys.argv in
  let seed = 42 in
  let arg_value name =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then None
      else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let only = arg_value "--only" in
  let j =
    match arg_value "-j" with
    | Some n -> ( match int_of_string_opt n with Some n -> n | None -> 1)
    | None -> 1
  in
  let todo =
    match only with
    | Some id -> (
        match Exp.Registry.find id with
        | Some e -> [ e ]
        | None ->
            Format.eprintf "unknown experiment %s@." id;
            exit 1)
    | None -> Exp.Registry.all
  in
  if run_micro then micro ()
  else if run_speedup then
    print_endline (parallel_speedup_json ~todo ~full ~seed)
  else if run_fuzz then print_endline (fuzz_throughput_json ())
  else if run_many_flows then begin
    let flows =
      match arg_value "--flows" with
      | Some n -> ( match int_of_string_opt n with Some n -> n | None -> 100_000)
      | None -> 100_000
    in
    let wall =
      match arg_value "--wall" with
      | Some s -> ( match float_of_string_opt s with Some s -> s | None -> 2.0)
      | None -> 2.0
    in
    print_endline (many_flows_json ~flows ~wall)
  end
  else begin
    let ppf = Format.std_formatter in
    Format.fprintf ppf
      "TFRC reproduction benchmark harness — regenerating the paper's \
       figures (%s scale, seed %d)@.@."
      (if full then "paper" else "scaled-down")
      seed;
    List.iter
      (fun e ->
        let started = Unix.gettimeofday () in
        Format.fprintf ppf
          "==================================================================@.";
        Format.fprintf ppf "=== %s: %s@.@." e.Exp.Registry.id
          e.Exp.Registry.title;
        ignore
          (Exp.Runner.run_experiment ~j ~full ~seed e ppf : Exp.Runner.report);
        (* Machine-readable summary for trend tracking across runs. *)
        if e.Exp.Registry.id = "resilience" then
          Format.fprintf ppf "%s@." (Exp.Resilience.json_line ~seed);
        if e.Exp.Registry.id = "fig2" then
          Format.fprintf ppf "%s@." (trace_overhead_json ());
        if e.Exp.Registry.id = "fig5" then
          Format.fprintf ppf "%s@." (checkpoint_overhead_json ~seed);
        Format.fprintf ppf "@.[%s done in %.1f s wall clock]@.@."
          e.Exp.Registry.id
          (Unix.gettimeofday () -. started))
      todo
  end
