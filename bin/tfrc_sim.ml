(* tfrc_sim: command-line driver for the TFRC reproduction.

   Subcommands:
     list                      enumerate the paper's experiments
     exp <id> [--full] [--seed n]   regenerate one figure/table
     all [--full] [--seed n]        regenerate everything
     duel [options]            ad-hoc TCP-vs-TFRC dumbbell run
     wire <sub>                real-time UDP mode: the same TFRC state
                               machines on a select()-based event loop
                               (sender / receiver / loopback-demo /
                               validate)

   The grid subcommands (exp/all/chaos) accept supervision flags —
   --retries, --max-events, --max-sim-time, --checkpoint, --resume — that
   route through Exp.Runner's supervised execution layer (budgets, retry,
   crash isolation, kill-and-resume). See EXPERIMENTS.md, "Supervised
   execution". *)

open Cmdliner

let seed_arg =
  let doc = "Random seed for reproducible runs." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let full_arg =
  let doc =
    "Run at the paper's full scale (longer simulations, full parameter \
     grids) instead of the scaled-down defaults."
  in
  Arg.(value & flag & info [ "full" ] ~doc)

let jobs_arg =
  let doc =
    "Run experiment jobs on $(docv) worker domains (an OCaml 5 domain \
     pool). Output is byte-identical to $(b,-j 1): every job's RNG is \
     derived from (seed, job key) and results render in job order."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let scheduler_arg =
  let sch_conv =
    let parse s =
      match Engine.Sim.scheduler_of_string s with
      | Some sch -> Ok sch
      | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown scheduler %S (expected wheel or heap)" s))
    in
    let print ppf s = Format.pp_print_string ppf (Engine.Sim.scheduler_name s) in
    Arg.conv (parse, print)
  in
  let doc =
    "Event-queue backend: $(b,wheel) (hierarchical timing wheel, the \
     default) or $(b,heap) (binary heap). Both produce byte-identical \
     simulations — the knob exists for benchmarking and differential \
     testing."
  in
  Arg.(value & opt sch_conv `Wheel & info [ "scheduler" ] ~docv:"BACKEND" ~doc)

let trace_arg =
  let doc =
    "Write every structured simulation event (tfrc/*, link/*, fault/*, \
     queue/*, sim/*) to $(docv) as JSON lines. See EXPERIMENTS.md for the \
     event schema."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let check_arg =
  let doc =
    "Subscribe the RFC 3448 runtime-invariant checker to the simulation \
     trace bus and report violations after the run (non-zero exit if any)."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

(* --- Supervision flags (exp/all/chaos) ------------------------------------ *)

type sup = {
  retries : int;
  budget : Exp.Job.budget option;
  ckpt_dir : string option;
  resume : bool;
}

let supervised sup =
  sup.retries > 0 || sup.budget <> None || sup.ckpt_dir <> None

let sup_term =
  let retries =
    let doc =
      "Retry a failed or timed-out cell up to $(docv) times. Each attempt \
       draws a fresh deterministic RNG stream from (seed, key, attempt), so \
       retried runs stay reproducible at any $(b,-j)."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let max_events =
    let doc =
      "Cooperative per-cell budget: kill a cell after $(docv) executed \
       simulator events (counted across all its Sim.run calls) and mark it \
       timed out."
    in
    Arg.(value & opt (some int) None & info [ "max-events" ] ~docv:"N" ~doc)
  in
  let max_time =
    let doc =
      "Cooperative per-cell budget: kill a cell when a simulation would \
       step past $(docv) seconds of virtual time."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "max-sim-time" ] ~docv:"SECONDS" ~doc)
  in
  let ckpt =
    let doc =
      "Append each completed cell to an fsync'd JSONL store under $(docv) \
       (one file per experiment grid), so an interrupted run can be \
       finished with $(b,--resume)."
    in
    Arg.(
      value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)
  in
  let resume =
    let doc =
      "Skip cells already completed in the $(b,--checkpoint) store and \
       recompute only the rest; the rendered output is byte-identical to \
       an uninterrupted run."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let make retries max_events max_time ckpt_dir resume =
    if retries < 0 then begin
      Format.eprintf "tfrc_sim: --retries must be non-negative@.";
      exit 1
    end;
    (match max_events with
    | Some n when n <= 0 ->
        Format.eprintf "tfrc_sim: --max-events must be positive@.";
        exit 1
    | _ -> ());
    (match max_time with
    | Some t when t <= 0. ->
        Format.eprintf "tfrc_sim: --max-sim-time must be positive@.";
        exit 1
    | _ -> ());
    if resume && ckpt_dir = None then begin
      Format.eprintf "tfrc_sim: --resume requires --checkpoint DIR@.";
      exit 1
    end;
    let budget =
      match (max_events, max_time) with
      | None, None -> None
      | max_events, max_time -> Some { Exp.Job.max_events; max_time }
    in
    { retries; budget; ckpt_dir; resume }
  in
  Term.(const make $ retries $ max_events $ max_time $ ckpt $ resume)

(* The checkpoint store fsyncs each cell as it completes, so on SIGINT or
   SIGTERM there is nothing to flush — just tell the user how to pick the
   run back up and exit with the conventional 128+signo status. SIGTERM
   matters because cluster schedulers and CI runners kill with it, not ^C.
   (SIGKILL skips the handler and is equally safe, minus the hint.) *)
let install_signals sup =
  if sup.ckpt_dir <> None then begin
    let handler ~what ~code =
      Sys.Signal_handle
        (fun _ ->
          prerr_endline
            ("tfrc_sim: " ^ what
           ^ "; completed cells are checkpointed — rerun with --resume to \
              finish");
          exit code)
    in
    Sys.set_signal Sys.sigint (handler ~what:"interrupted" ~code:130);
    Sys.set_signal Sys.sigterm (handler ~what:"terminated" ~code:143)
  end

(* Runs [f] with the checkpoint store for [grid] (when enabled), closing it
   afterwards. Each experiment grid gets its own file under the directory. *)
let with_store sup ~grid f =
  match sup.ckpt_dir with
  | None -> f None
  | Some dir ->
      let ck = Exp.Checkpoint.open_store ~dir ~grid ~resume:sup.resume in
      Fun.protect
        ~finally:(fun () -> Exp.Checkpoint.close ck)
        (fun () -> f (Some ck))

(* The structured run report goes to stderr: stdout stays byte-identical
   to an unsupervised run (modulo MISSING lines for cells that gave up),
   which is what lets CI diff a resumed run against a clean one. *)
let print_report sup report =
  if supervised sup then
    Format.eprintf "%s@." (Exp.Runner.report_json report)

(* Run [f ()] with the requested observers on the process-wide trace bus
   (every [Sim.create ()] underneath attaches to it), then tear them down,
   report, and exit non-zero on invariant violations. *)
let observe ~trace ~check f =
  let bus = Engine.Trace.default () in
  let with_trace f =
    match trace with
    | None -> f ()
    | Some file ->
        let sink = Engine.Trace.file_sink file in
        Engine.Trace.add_sink bus sink;
        Fun.protect
          ~finally:(fun () ->
            Engine.Trace.remove_sink bus sink;
            sink.Engine.Trace.close ())
          f
  in
  let with_check f =
    if not check then f ()
    else begin
      let checker = Tfrc.Invariants.create () in
      Tfrc.Invariants.attach checker bus;
      Fun.protect ~finally:(fun () -> Tfrc.Invariants.detach checker bus) f;
      Format.printf "@.invariant check: %a@." Tfrc.Invariants.report checker;
      if not (Tfrc.Invariants.ok checker) then exit 1
    end
  in
  with_trace (fun () -> with_check f);
  Option.iter (Format.printf "trace written to %s@.") trace

let list_cmd =
  let run () =
    let ppf = Format.std_formatter in
    Exp.Table.print ppf ~header:[ "id"; "title" ]
      (List.map
         (fun e -> [ e.Exp.Registry.id; e.Exp.Registry.title ])
         Exp.Registry.all)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper's experiments.")
    Term.(const run $ const ())

let run_one ~j ~full ~seed ~sup id =
  match Exp.Registry.find id with
  | None ->
      Format.eprintf "unknown experiment %s; try `tfrc_sim list'@." id;
      exit 1
  | Some e ->
      let ppf = Format.std_formatter in
      Format.fprintf ppf "=== %s: %s ===@.@." e.id e.title;
      let report =
        with_store sup ~grid:(Exp.Registry.grid_id e ~full ~seed)
          (fun checkpoint ->
            Exp.Runner.run_experiment ~j ~retries:sup.retries ?budget:sup.budget
              ?checkpoint ~full ~seed e ppf)
      in
      print_report sup report;
      Format.fprintf ppf "@."

let exp_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID")
  in
  let run full seed j trace check sup scheduler id =
    Engine.Sim.set_default_scheduler scheduler;
    install_signals sup;
    observe ~trace ~check (fun () -> run_one ~j ~full ~seed ~sup id)
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Regenerate one figure or table from the paper.")
    Term.(
      const run $ full_arg $ seed_arg $ jobs_arg $ trace_arg $ check_arg
      $ sup_term $ scheduler_arg $ id_arg)

let all_cmd =
  let run full seed j trace check sup scheduler =
    Engine.Sim.set_default_scheduler scheduler;
    install_signals sup;
    observe ~trace ~check (fun () ->
        List.iter
          (fun e -> run_one ~j ~full ~seed ~sup e.Exp.Registry.id)
          Exp.Registry.all)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every figure and table.")
    Term.(
      const run $ full_arg $ seed_arg $ jobs_arg $ trace_arg $ check_arg
      $ sup_term $ scheduler_arg)

let duel_cmd =
  let n_tcp =
    Arg.(value & opt int 2 & info [ "tcp" ] ~docv:"N" ~doc:"Number of TCP flows.")
  in
  let n_tfrc =
    Arg.(
      value & opt int 2 & info [ "tfrc" ] ~docv:"N" ~doc:"Number of TFRC flows.")
  in
  let mbps =
    Arg.(
      value & opt float 15.
      & info [ "mbps" ] ~docv:"RATE" ~doc:"Bottleneck bandwidth, Mb/s.")
  in
  let red =
    Arg.(value & flag & info [ "red" ] ~doc:"Use RED instead of DropTail.")
  in
  let duration =
    Arg.(
      value & opt float 60.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated time.")
  in
  let run n_tcp n_tfrc mbps red duration seed trace check scheduler =
    Engine.Sim.set_default_scheduler scheduler;
    observe ~trace ~check @@ fun () ->
    let bandwidth = Engine.Units.mbps mbps in
    let params =
      {
        (Exp.Scenario.default_mixed ()) with
        bandwidth;
        queue =
          Exp.Scenario.scaled_queue (if red then `Red else `Droptail) ~bandwidth;
        n_tcp;
        n_tfrc;
        duration;
        warmup = duration /. 3.;
        seed;
      }
    in
    let r = Exp.Scenario.run_mixed params in
    let ppf = Format.std_formatter in
    Format.fprintf ppf
      "%d TCP + %d TFRC over %.1f Mb/s (%s), %.0f s, fair share %.1f KB/s@.@."
      n_tcp n_tfrc mbps
      (if red then "RED" else "DropTail")
      duration (r.fair_share /. 1e3);
    let rows label flows =
      List.map
        (fun (f : Exp.Scenario.flow_stats) ->
          [
            Printf.sprintf "%s %d" label f.flow_id;
            Printf.sprintf "%.1f" (f.mean_recv_rate /. 1e3);
            Printf.sprintf "%.2f" (f.mean_recv_rate /. r.fair_share);
          ])
        flows
    in
    Exp.Table.print ppf
      ~header:[ "flow"; "KB/s"; "normalized" ]
      (rows "tcp" r.tcp_flows @ rows "tfrc" r.tfrc_flows);
    Format.fprintf ppf "@.utilization %.3f, drop rate %.4f@." r.utilization
      r.drop_rate
  in
  Cmd.v
    (Cmd.info "duel" ~doc:"Ad-hoc TCP vs TFRC dumbbell simulation.")
    Term.(
      const run $ n_tcp $ n_tfrc $ mbps $ red $ duration $ seed_arg $ trace_arg
      $ check_arg $ scheduler_arg)

let chaos_cmd =
  let at =
    Arg.(
      value & opt float 15.
      & info [ "outage-at" ] ~docv:"SECONDS" ~doc:"Outage start time.")
  in
  let outage_duration =
    Arg.(
      value & opt float 2.
      & info [ "outage-duration" ] ~docv:"SECONDS" ~doc:"Outage length.")
  in
  let run at outage_duration seed j trace check sup scheduler =
    Engine.Sim.set_default_scheduler scheduler;
    install_signals sup;
    observe ~trace ~check @@ fun () ->
    if at < 0. then begin
      Format.eprintf "tfrc_sim: --outage-at must be non-negative@.";
      exit 1
    end;
    if outage_duration < 0. then begin
      Format.eprintf "tfrc_sim: --outage-duration must be non-negative@.";
      exit 1
    end;
    (* One-job grid through the runner, so -j N exercises the same
       capture/replay path as the experiment subcommands. The job uses the
       CLI seed directly (not a derived stream): the timeline must match
       what `exp resilience' documents for this seed. *)
    let job =
      Exp.Job.make "chaos/outage" (fun _rng ->
          let report, pace =
            Exp.Resilience.tfrc_outage_case ~seed ~at
              ~duration:outage_duration ()
          in
          [
            ("pre_rate", Exp.Job.f report.Exp.Resilience.pre_rate);
            ("min_send_during", Exp.Job.f report.min_send_during);
            ("floor_ok", Exp.Job.b report.floor_ok);
            ("nofb_expiries", Exp.Job.i report.nofb_expiries);
            ("recovery_time", Exp.Job.f report.recovery_time);
            ("overshoot", Exp.Job.f report.overshoot);
            ("pace", Exp.Job.pairs (Array.to_list pace));
          ])
    in
    let grid = Printf.sprintf "chaos.seed%d.at%g.dur%g" seed at outage_duration in
    let outcomes, report =
      with_store sup ~grid (fun checkpoint ->
          Exp.Runner.run_jobs_supervised ~j ~retries:sup.retries
            ?budget:sup.budget ?checkpoint ~seed [ job ])
    in
    print_report sup report;
    let result =
      match outcomes with
      | [ (_, Exp.Runner.Completed r) ] -> r
      | [ (_, Exp.Runner.Gave_up f) ] ->
          Format.eprintf "chaos/outage %s@." (Exp.Runner.failure_summary f);
          exit 1
      | _ -> assert false
    in
    let report =
      {
        Exp.Resilience.case = "outage";
        proto = "tfrc";
        pre_rate = Exp.Job.get_float result "pre_rate";
        min_send_during = Exp.Job.get_float result "min_send_during";
        floor_ok = Exp.Job.get_bool result "floor_ok";
        nofb_expiries = Exp.Job.get_int result "nofb_expiries";
        recovery_time = Exp.Job.get_float result "recovery_time";
        overshoot = Exp.Job.get_float result "overshoot";
        post_rate = Float.nan;
      }
    in
    let pace = Array.of_list (Exp.Job.get_pairs result "pace") in
    let ppf = Format.std_formatter in
    Format.fprintf ppf
      "TFRC through a %.1f s link outage at t=%.1f (seed %d)@.@." outage_duration
      at seed;
    (* Timeline of the pacing rate around the outage, thinned for display. *)
    let rows = ref [] in
    let last = ref neg_infinity in
    Array.iter
      (fun (t, r) ->
        let near_fault = t >= at -. 1. && t <= at +. outage_duration +. 2. in
        let step = if near_fault then 0.2 else 2.0 in
        if t -. !last >= step then begin
          last := t;
          let phase =
            if t < at then "up"
            else if t < at +. outage_duration then "DOWN"
            else "up"
          in
          rows := [ Printf.sprintf "%.2f" t; phase; Printf.sprintf "%.2f" (r /. 1e3) ] :: !rows
        end)
      pace;
    Exp.Table.print ppf
      ~header:[ "time"; "link"; "pacing KB/s" ]
      (List.rev !rows);
    Format.fprintf ppf
      "@.pre-outage %.1f KB/s; floor reached %s KB/s (%s) over %d \
       no-feedback expirations; recovery %s s; overshoot %.2f@."
      (report.Exp.Resilience.pre_rate /. 1e3)
      (if Float.is_finite report.min_send_during then
         Printf.sprintf "%.2f" (report.min_send_during /. 1e3)
       else "n/a")
      (if report.floor_ok then "never below the floor" else "FLOOR VIOLATED")
      report.nofb_expiries
      (if Float.is_nan report.recovery_time then "never"
       else Printf.sprintf "%.1f" report.recovery_time)
      report.overshoot
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Script a mid-flow link outage against a TFRC flow and print the \
          backoff/slow-restart timeline (see also `exp resilience').")
    Term.(
      const run $ at $ outage_duration $ seed_arg $ jobs_arg $ trace_arg
      $ check_arg $ sup_term $ scheduler_arg)

let topo_cmd =
  let fail_arg =
    let doc =
      "Backbone segment to cut, both directions (one of nyc-chi, chi-den, \
       den-sfo, nyc-atl, atl-sfo)."
    in
    Arg.(value & opt string "chi-den" & info [ "fail" ] ~docv:"LABEL" ~doc)
  in
  let dark_arg =
    let doc =
      "Keep this segment dark for the whole run (repeatable). E.g. \
       $(b,--dark nyc-atl --dark atl-sfo) removes the southern detour, \
       turning a $(b,chi-den) cut from a re-route into a partition."
    in
    Arg.(value & opt_all string [] & info [ "dark" ] ~docv:"LABEL" ~doc)
  in
  let at_arg =
    Arg.(
      value & opt float 15.
      & info [ "outage-at" ] ~docv:"SECONDS" ~doc:"Cut start time.")
  in
  let duration_arg =
    Arg.(
      value & opt float 10.
      & info [ "outage-duration" ] ~docv:"SECONDS" ~doc:"Cut length.")
  in
  let run fail dark at duration trace check scheduler =
    Engine.Sim.set_default_scheduler scheduler;
    observe ~trace ~check @@ fun () ->
    List.iter
      (fun l ->
        if not (List.mem l Exp.Topo_impact.segment_labels) then begin
          Format.eprintf "tfrc_sim: unknown segment %S (expected one of %s)@." l
            (String.concat ", " Exp.Topo_impact.segment_labels);
          exit 1
        end)
      (fail :: dark);
    if at <= 0. || duration <= 0. then begin
      Format.eprintf
        "tfrc_sim: --outage-at and --outage-duration must be positive@.";
      exit 1
    end;
    let reports, recomputes =
      Exp.Topo_impact.scripted ~fail ~dark ~at ~duration ()
    in
    let ppf = Format.std_formatter in
    Format.fprintf ppf
      "Transcontinental WAN, %s cut at t=%g for %g s%s; TFRC probe flows \
       coast (nyc-sfo), short (nyc-chi), south (atl-sfo).@.@."
      fail at duration
      (match dark with
      | [] -> ""
      | ls -> Printf.sprintf " (dark: %s)" (String.concat ", " ls));
    Exp.Table.print ppf
      ~header:
        [ "flow"; "static impact"; "pre KB/s"; "during KB/s"; "post KB/s";
          "verdict" ]
      (List.map
         (fun (r : Exp.Topo_impact.flow_report) ->
           [
             r.fname;
             r.kind;
             Printf.sprintf "%.1f" (r.pre /. 1e3);
             Printf.sprintf "%.1f" (r.during /. 1e3);
             Printf.sprintf "%.1f" (r.post /. 1e3);
             (if r.consistent then "consistent" else "MISMATCH");
           ])
         reports);
    Format.fprintf ppf
      "@.%d routing recomputations; verdict: rerouted flows must keep >= \
       5%% of pre-cut goodput through the outage, partitioned ones must \
       fall below 5%%.@."
      recomputes;
    if List.exists (fun (r : Exp.Topo_impact.flow_report) -> not r.consistent)
         reports
    then begin
      Format.eprintf "tfrc_sim: static impact and dynamics disagree@.";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "topo"
       ~doc:
         "Cut a backbone segment of the routed transcontinental WAN and \
          check the static partition/re-route impact analysis against the \
          goodput the chaos layer actually produces (see also `exp \
          topology').")
    Term.(
      const run $ fail_arg $ dark_arg $ at_arg $ duration_arg $ trace_arg
      $ check_arg $ scheduler_arg)

let trace_cmd =
  let out_arg =
    Arg.(
      value
      & opt string "tfrc_trace.txt"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let duration =
    Arg.(
      value & opt float 5.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated time.")
  in
  let run out duration seed =
    (* One TFRC + one TCP over a small bottleneck, packet events traced at
       the congested link in ns-2 format. *)
    let sim = Engine.Sim.create () in
    let rng = Engine.Rng.create ~seed in
    let db =
      Netsim.Dumbbell.create (Engine.Sim.runtime sim)
        ~bandwidth:(Engine.Units.mbps 2.)
        ~delay:0.01
        ~queue:(Netsim.Dumbbell.Droptail_q 20)
        ()
    in
    let tracer = Netsim.Tracer.create (fun () -> Engine.Sim.now sim) in
    Netsim.Tracer.attach_link tracer (Netsim.Dumbbell.forward_link db);
    let tcp =
      Exp.Scenario.attach_tcp db ~flow:1
        ~rtt_base:(Engine.Rng.uniform rng 0.05 0.07)
        ~config:Tcpsim.Tcp_common.ns_sack
    in
    Tcpsim.Tcp_sender.start tcp.tcp_sender ~at:0.1;
    let tfrc =
      Exp.Scenario.attach_tfrc db ~flow:2
        ~rtt_base:(Engine.Rng.uniform rng 0.05 0.07)
        ~config:(Tfrc.Tfrc_config.default ())
    in
    Tfrc.Tfrc_sender.start tfrc.tfrc_sender ~at:0.;
    Engine.Sim.run sim ~until:duration;
    Netsim.Tracer.write tracer out;
    Format.printf
      "wrote %d events to %s (codes: r = delivered by the bottleneck, d = \
       dropped at its queue)@."
      (Netsim.Tracer.n_events tracer)
      out
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a small TFRC-vs-TCP simulation and write an ns-2-style packet \
          trace of the bottleneck link.")
    Term.(const run $ out_arg $ duration $ seed_arg)

let fuzz_cmd =
  let cases =
    Arg.(
      value & opt int 100
      & info [ "cases" ] ~docv:"N" ~doc:"Number of random scenarios to run.")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "Delta-debug each failing scenario to a minimal still-failing \
             case before reporting it.")
  in
  let mutate =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Self-test: deterministically plant a known queue-accounting bug \
             and exit successfully only if the fuzzer catches it (and \
             nothing else).")
  in
  let artifacts =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifacts" ] ~docv:"DIR"
          ~doc:
            "Write a replayable repro bundle for every failing case under \
             $(docv) (created, with parents, if needed); replay with \
             $(b,tfrc_sim repro).")
  in
  let max_shrink_runs =
    Arg.(
      value & opt int 300
      & info [ "max-shrink-runs" ] ~docv:"N"
          ~doc:"Oracle-execution budget per shrink.")
  in
  let run cases seed j shrink mutate artifacts max_shrink_runs scheduler =
    Engine.Sim.set_default_scheduler scheduler;
    if cases <= 0 then begin
      Format.eprintf "tfrc_sim: --cases must be positive@.";
      exit 1
    end;
    if max_shrink_runs <= 0 then begin
      Format.eprintf "tfrc_sim: --max-shrink-runs must be positive@.";
      exit 1
    end;
    let summary =
      Fuzz.Driver.run ~out:Format.std_formatter
        {
          Fuzz.Driver.cases;
          seed;
          j;
          shrink;
          mutate;
          artifacts;
          max_shrink_runs;
        }
    in
    if mutate then
      if Fuzz.Driver.mutate_ok summary then begin
        Format.printf
          "mutate self-test: planted bug caught by queue-conservation@.";
        exit 0
      end
      else begin
        Format.printf
          "mutate self-test FAILED: the planted accounting bug was not \
           isolated (expected every failure to be queue-conservation, with \
           at least one)@.";
        exit 1
      end
    else exit (if summary.Fuzz.Driver.failed = 0 then 0 else 1)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run randomized chaos scenarios against the invariant oracles; \
          shrink and bundle failures for replay. Deterministic: equal \
          (--cases, --seed) give equal output at any -j.")
    Term.(
      const run $ cases $ seed_arg $ jobs_arg $ shrink $ mutate $ artifacts
      $ max_shrink_runs $ scheduler_arg)

let repro_cmd =
  let bundle_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BUNDLE" ~doc:"Repro bundle written by `tfrc_sim fuzz'.")
  in
  let run path =
    let bundle =
      try Fuzz.Bundle.load path
      with Failure msg ->
        Format.eprintf "tfrc_sim: %s@." msg;
        exit 2
    in
    Format.printf "%a@." Fuzz.Bundle.pp bundle;
    exit (if Fuzz.Driver.repro ~out:Format.std_formatter bundle then 0 else 1)
  in
  Cmd.v
    (Cmd.info "repro"
       ~doc:
         "Replay a fuzz repro bundle bit-for-bit and check that it still \
          fails the recorded oracles.")
    Term.(const run $ bundle_arg)

(* --- wire: the TFRC state machines over real UDP ------------------------ *)

let wire_cmd =
  let loss_arg =
    Arg.(
      value & opt float 0.
      & info [ "loss" ] ~docv:"P"
          ~doc:"Shaper drop probability per frame, each direction.")
  in
  let delay_arg =
    Arg.(
      value & opt float 0.002
      & info [ "delay" ] ~docv:"S"
          ~doc:"Shaper one-way base delay, seconds, each direction.")
  in
  let jitter_arg =
    Arg.(
      value & opt float 0.
      & info [ "jitter" ] ~docv:"S"
          ~doc:"Shaper extra delay, uniform in [0,$(docv)), each direction.")
  in
  let reorder_arg =
    Arg.(
      value & opt float 0.
      & info [ "reorder" ] ~docv:"P"
          ~doc:
            "Probability a frame skips the base delay and overtakes \
             in-flight predecessors (netem-style reordering).")
  in
  let shaper_of loss delay jitter reorder =
    { Wire.Shaper.loss; delay; jitter; reorder }
  in
  let demo_config () = Tfrc.Tfrc_config.default ~initial_rtt:0.05 () in
  let pp_sender_stats m =
    Format.printf
      "sent %d data packets (%d bytes); %d feedbacks received; allowed rate \
       %.0f B/s; rtt %.4f s; loss event rate %h@."
      (Tfrc.Tfrc_sender.packets_sent m)
      (Tfrc.Tfrc_sender.bytes_sent m)
      (Tfrc.Tfrc_sender.feedbacks_received m)
      (Tfrc.Tfrc_sender.rate m) (Tfrc.Tfrc_sender.rtt m)
      (Tfrc.Tfrc_sender.loss_event_rate m)
  in
  let sender_cmd =
    let port_arg =
      Arg.(
        required
        & opt (some int) None
        & info [ "port" ] ~docv:"PORT"
            ~doc:"Receiver's UDP port on 127.0.0.1.")
    in
    let duration_arg =
      Arg.(
        value & opt float 5.
        & info [ "duration" ] ~docv:"S" ~doc:"How long to transmit, seconds.")
    in
    let run port duration =
      let loop = Wire.Loop.create () in
      let udp = Wire.Udp.create loop () in
      let s =
        Wire.Endpoint.sender loop udp ~config:(demo_config ()) ~flow:1
          ~dest:(Wire.Udp.addr ~port) ()
      in
      Wire.Endpoint.start_sender s ~at:(Wire.Loop.now loop);
      Wire.Loop.run loop ~until:duration;
      Wire.Endpoint.stop_sender s;
      pp_sender_stats (Wire.Endpoint.sender_machine s);
      Wire.Udp.close udp
    in
    Cmd.v
      (Cmd.info "sender"
         ~doc:
           "Transmit TFRC data to a $(b,tfrc_sim wire receiver) over \
            loopback UDP for a fixed duration.")
      Term.(const run $ port_arg $ duration_arg)
  in
  let receiver_cmd =
    let port_arg =
      Arg.(
        value & opt int 0
        & info [ "port" ] ~docv:"PORT"
            ~doc:"UDP port to bind on 127.0.0.1 (0 = ephemeral, printed).")
    in
    let packets_arg =
      Arg.(
        value & opt int 200
        & info [ "packets" ] ~docv:"N"
            ~doc:"Exit successfully once $(docv) data packets arrived.")
    in
    let timeout_arg =
      Arg.(
        value & opt float 30.
        & info [ "timeout" ] ~docv:"S"
            ~doc:"Give up (non-zero exit) after $(docv) seconds.")
    in
    let run port packets timeout =
      let loop = Wire.Loop.create () in
      let udp = Wire.Udp.create loop ~port () in
      Format.printf "listening on 127.0.0.1:%d@." (Wire.Udp.port udp);
      let r =
        Wire.Endpoint.receiver loop udp ~config:(demo_config ()) ~flow:1 ()
      in
      let m = Wire.Endpoint.receiver_machine r in
      let rec check () =
        if Tfrc.Tfrc_receiver.packets_received m >= packets then
          Wire.Loop.stop loop
        else ignore (Wire.Loop.after loop 0.005 check)
      in
      ignore (Wire.Loop.after loop 0.005 check);
      Wire.Loop.run loop ~until:timeout;
      Wire.Endpoint.stop_receiver r;
      let got = Tfrc.Tfrc_receiver.packets_received m in
      Format.printf
        "received %d data packets (%d bytes); sent %d feedbacks; %d decode \
         errors@."
        got
        (Tfrc.Tfrc_receiver.bytes_received m)
        (Tfrc.Tfrc_receiver.feedbacks_sent m)
        (Wire.Endpoint.receiver_decode_errors r);
      Wire.Udp.close udp;
      exit (if got >= packets then 0 else 1)
    in
    Cmd.v
      (Cmd.info "receiver"
         ~doc:
           "Receive TFRC data on loopback UDP; exit 0 once the target \
            packet count arrived.")
      Term.(const run $ port_arg $ packets_arg $ timeout_arg)
  in
  let demo_cmd =
    let packets_arg =
      Arg.(
        value & opt int 200
        & info [ "packets" ] ~docv:"N"
            ~doc:"Data packets the receiver must get for success.")
    in
    let timeout_arg =
      Arg.(
        value & opt float 30.
        & info [ "timeout" ] ~docv:"S" ~doc:"Wall-clock budget, seconds.")
    in
    let run packets timeout seed loss delay jitter reorder =
      let shaper = shaper_of loss delay jitter reorder in
      let r =
        Wire.Endpoint.loopback_demo ~packets ~seed ~shaper ~timeout ()
      in
      Format.printf "%a@." Wire.Endpoint.pp_demo_result r;
      exit (if r.Wire.Endpoint.completed then 0 else 1)
    in
    Cmd.v
      (Cmd.info "loopback-demo"
         ~doc:
           "One-process demo: a TFRC sender and receiver exchange real UDP \
            datagrams on 127.0.0.1 through a seeded netem-style shaper; \
            exit 0 when the transfer completes.")
      Term.(
        const run $ packets_arg $ timeout_arg $ seed_arg $ loss_arg
        $ delay_arg $ jitter_arg $ reorder_arg)
  in
  let validate_cmd =
    let duration_arg =
      Arg.(
        value & opt float 30.
        & info [ "duration" ] ~docv:"S"
            ~doc:"Virtual seconds to drive each side.")
    in
    let app_limit_arg =
      Arg.(
        value & opt (some float) (Some 1e5)
        & info [ "app-limit" ] ~docv:"BPS"
            ~doc:
              "Application pacing limit, bytes/s, applied to both sides \
               (bounds lossless slow start; pass a huge value to lift).")
    in
    let run duration app_limit seed loss delay jitter reorder =
      let shaper = shaper_of loss delay jitter reorder in
      let r = Wire.Validate.run ~shaper ?app_limit ~seed ~duration () in
      Format.printf "%a@." Wire.Validate.pp_result r;
      exit (if r.Wire.Validate.equal then 0 else 1)
    in
    Cmd.v
      (Cmd.info "validate"
         ~doc:
           "Differential check: run the same TFRC session on the simulator \
            and on the warp wire loop (with codec framing) and demand \
            bit-identical sender decision logs. Non-zero exit on any \
            divergence.")
      Term.(
        const run $ duration_arg $ app_limit_arg $ seed_arg $ loss_arg
        $ delay_arg $ jitter_arg $ reorder_arg)
  in
  let soak_cmd =
    let cases_arg =
      Arg.(
        value & opt int 50
        & info [ "cases" ] ~docv:"N"
            ~doc:"Number of random chaos cases to run.")
    in
    let mutate_arg =
      Arg.(
        value & flag
        & info [ "mutate" ]
            ~doc:
              "Self-test: deterministically plant a known supervisor \
               lifecycle bug (a dead peer restarts without backing off) and \
               exit successfully only if the soak catches it (and nothing \
               else).")
    in
    let artifacts_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "artifacts" ] ~docv:"DIR"
            ~doc:
              "Write a replayable repro bundle for every failing case under \
               $(docv); replay with $(b,--replay).")
    in
    let replay_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "replay" ] ~docv:"BUNDLE"
            ~doc:
              "Instead of soaking, replay one repro bundle and check that \
               it reproduces its recorded verdict.")
    in
    let run cases seed j mutate artifacts replay =
      match replay with
      | Some path ->
          let ok =
            try Fuzz.Wire_soak.replay ~out:Format.std_formatter path
            with Failure msg | Sys_error msg ->
              Format.eprintf "tfrc_sim: %s@." msg;
              exit 2
          in
          exit (if ok then 0 else 1)
      | None ->
          if cases <= 0 then begin
            Format.eprintf "tfrc_sim: --cases must be positive@.";
            exit 1
          end;
          let summary =
            Fuzz.Wire_soak.run ~out:Format.std_formatter
              { Fuzz.Wire_soak.cases; seed; j; mutate; artifacts }
          in
          if mutate then
            if Fuzz.Wire_soak.mutate_ok summary then begin
              Format.printf "mutate self-test: planted bug caught by sup-legal@.";
              exit 0
            end
            else begin
              Format.printf
                "mutate self-test FAILED: the planted lifecycle bug was not \
                 isolated (expected every failure to be sup-legal, with at \
                 least one)@.";
              exit 1
            end
          else exit (if summary.Fuzz.Wire_soak.failed = 0 then 0 else 1)
    in
    Cmd.v
      (Cmd.info "soak"
         ~doc:
           "Chaos soak over real loopback sockets: seeded syscall faults \
            (EAGAIN/EINTR/ECONNREFUSED bursts, hard-errno blackouts, \
            truncated reads) against the supervised endpoint lifecycle, \
            judged by wire oracles. Deterministic: equal (--cases, --seed) \
            give equal output at any -j.")
      Term.(
        const run $ cases_arg $ seed_arg $ jobs_arg $ mutate_arg
        $ artifacts_arg $ replay_arg)
  in
  Cmd.group
    (Cmd.info "wire"
       ~doc:
         "Real-time UDP mode: the simulator's TFRC state machines on a \
          select()-based event loop.")
    [ sender_cmd; receiver_cmd; demo_cmd; validate_cmd; soak_cmd ]

let () =
  let info =
    Cmd.info "tfrc_sim" ~version:"1.0.0"
      ~doc:
        "Equation-based congestion control (TFRC, SIGCOMM 2000): simulator \
         and experiment harness."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; exp_cmd; all_cmd; duel_cmd; chaos_cmd; topo_cmd;
            trace_cmd; fuzz_cmd; repro_cmd; wire_cmd;
          ]))
