(* ECN streaming: the paper's Section 7 outlook, working end to end.

   A video-like stream (application-limited to 1.2 Mb/s) runs over an
   ECN-enabled RED bottleneck next to ECN TCP. Congestion is signalled by
   marks instead of drops, so the stream adapts with (almost) no packets
   lost — the property a codec cares most about. Also shows the Session
   wiring API and app-limited pacing with RFC 5348 rate validation.

     dune exec examples/ecn_streaming.exe *)

let () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:9 in
  let bandwidth = Engine.Units.mbps 3. in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.02
      ~queue:
        (Netsim.Dumbbell.Red_q
           (Netsim.Red.params ~min_th:5. ~max_th:20. ~ecn:true ~limit_pkts:40 ()))
      ()
  in
  (* Two ECN-capable TCP flows as company. *)
  let tcps =
    List.init 2 (fun i ->
        let h =
          Exp.Scenario.attach_tcp db ~flow:(i + 1)
            ~rtt_base:(Engine.Rng.uniform rng 0.07 0.09)
            ~config:(Tcpsim.Tcp_common.default ~ecn:true ())
        in
        Tcpsim.Tcp_sender.start h.tcp_sender ~at:(Engine.Rng.float rng 1.);
        h)
  in
  (* The stream: TFRC with ECN and rate validation, app-limited at the
     codec's top bitrate. *)
  let config = Tfrc.Tfrc_config.default ~ecn:true ~rate_validation:true () in
  let session = Tfrc.Session.over_dumbbell db ~config ~flow:10 ~rtt_base:0.08 () in
  Tfrc.Tfrc_sender.set_app_limit session.sender
    (Some (Engine.Units.bps_to_byte_rate (Engine.Units.mbps 1.2)));
  Tfrc.Session.start session ~at:0.;
  let duration = 90. in
  Engine.Sim.run sim ~until:duration;
  let detector = Tfrc.Tfrc_receiver.detector session.receiver in
  Printf.printf
    "An app-limited (1.2 Mb/s) ECN stream next to 2 ECN TCP flows on 3 Mb/s:\n\n";
  Printf.printf "  stream rate:       %.1f KB/s (app ceiling %.1f KB/s)\n"
    (float_of_int (Tfrc.Tfrc_receiver.bytes_received session.receiver)
    /. duration /. 1e3)
    (Engine.Units.bps_to_byte_rate (Engine.Units.mbps 1.2) /. 1e3);
  List.iteri
    (fun i h ->
      Printf.printf "  tcp %d:             %.1f KB/s\n" (i + 1)
        (Netsim.Flowmon.mean_rate h.Exp.Scenario.tcp_recv_mon ~t0:20.
           ~t1:duration
        /. 1e3))
    tcps;
  Printf.printf "  congestion marks:  %d\n"
    (Tfrc.Loss_events.marked_packets detector);
  Printf.printf "  packets lost:      %d (of %d delivered)\n"
    (Tfrc.Loss_events.lost_packets detector)
    (Tfrc.Tfrc_receiver.packets_received session.receiver);
  Printf.printf "  bottleneck drops:  %.2f%%\n"
    (100. *. Netsim.Dumbbell.forward_drop_rate db);
  Printf.printf
    "\nCongestion reaches the codec as marks, not losses — the stream sees \
     the signal while delivering essentially every packet (Section 7's ECN \
     outlook, RFC 3168 semantics).\n"
