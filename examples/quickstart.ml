(* Quickstart: a single TFRC flow over a 1.5 Mb/s bottleneck.

   Shows the minimal wiring: create a simulator, a dumbbell topology, a
   TFRC sender/receiver pair, run, and read the achieved rate.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A simulator and a bottleneck: 1.5 Mb/s, 10 ms one-way delay,
        25-packet DropTail buffer. *)
  let sim = Engine.Sim.create () in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim)
      ~bandwidth:(Engine.Units.mbps 1.5)
      ~delay:0.010
      ~queue:(Netsim.Dumbbell.Droptail_q 25)
      ()
  in

  (* 2. Register a flow with a 60 ms base round-trip time. *)
  let flow = 1 in
  Netsim.Dumbbell.add_flow db ~flow ~rtt_base:0.060;

  (* 3. A TFRC receiver whose feedback goes back across the dumbbell, and
        a monitor recording everything it receives. *)
  let config = Tfrc.Tfrc_config.default () in
  let monitor = Netsim.Flowmon.create (fun () -> Engine.Sim.now sim) in
  let receiver =
    Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow
      ~transmit:(Netsim.Dumbbell.dst_sender db ~flow)
      ()
  in
  Netsim.Dumbbell.set_dst_recv db ~flow
    (Netsim.Flowmon.wrap monitor (Tfrc.Tfrc_receiver.recv receiver));

  (* 4. A TFRC sender; feedback packets are routed to it. *)
  let sender =
    Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow
      ~transmit:(Netsim.Dumbbell.src_sender db ~flow)
      ()
  in
  Netsim.Dumbbell.set_src_recv db ~flow (Tfrc.Tfrc_sender.recv sender);

  (* 5. Run for 60 simulated seconds. *)
  Tfrc.Tfrc_sender.start sender ~at:0.;
  Engine.Sim.run sim ~until:60.;

  (* 6. Results. *)
  Printf.printf "TFRC over a 1.5 Mb/s link for 60 s\n";
  Printf.printf "  received:        %.1f KB/s (link capacity %.1f KB/s)\n"
    (float_of_int (Netsim.Flowmon.bytes monitor) /. 60. /. 1e3)
    (Engine.Units.mbps 1.5 /. 8. /. 1e3);
  Printf.printf "  link utilization: %.1f%%\n"
    (100.
    *. Netsim.Link.utilization (Netsim.Dumbbell.forward_link db) ~duration:60.);
  Printf.printf "  loss event rate:  %.4f\n"
    (Tfrc.Tfrc_receiver.loss_event_rate receiver);
  Printf.printf "  smoothed RTT:     %.0f ms\n"
    (1e3 *. Tfrc.Tfrc_sender.rtt sender)
