(* Multi-bottleneck: a TFRC stream crossing three congested hops.

   The dumbbell answers "is TFRC fair at one bottleneck?"; real paths cross
   several. A through TFRC flow competes with fresh TCP cross traffic at
   every hop of a parking-lot topology — the canonical multi-bottleneck
   fairness scenario. The through flow should get roughly the rate of the
   most congested hop's fair share (and less than any single-hop flow,
   since it pays the loss rate of every hop).

     dune exec examples/multi_bottleneck.exe *)

let () =
  let sim = Engine.Sim.create () in
  let hops = 3 in
  let bandwidth = Engine.Units.mbps 3. in
  (* RED at each hop: DropTail's full-queue bias against sparse arrivals
     would otherwise starve the low-rate through flow outright. *)
  let lot =
    Netsim.Parking_lot.create (Engine.Sim.runtime sim) ~hops ~bandwidth ~delay:0.008
      ~queue:(fun () ->
        Netsim.Red.create
          ~params:(Netsim.Red.params ~min_th:5. ~max_th:15. ~limit_pkts:30 ())
          ~now:(fun () -> Engine.Sim.now sim)
          ~ptc:(bandwidth /. 8000.))
      ()
  in
  (* The monitored through flow: TFRC end to end. *)
  Netsim.Parking_lot.add_through_flow lot ~flow:1 ~rtt_base:0.09;
  let config = Tfrc.Tfrc_config.default () in
  let mon = Netsim.Flowmon.create (fun () -> Engine.Sim.now sim) in
  let receiver =
    Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow:1
      ~transmit:(Netsim.Parking_lot.dst_sender lot ~flow:1)
      ()
  in
  Netsim.Parking_lot.set_dst_recv lot ~flow:1
    (Netsim.Flowmon.wrap mon (Tfrc.Tfrc_receiver.recv receiver));
  let sender =
    Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow:1
      ~transmit:(Netsim.Parking_lot.src_sender lot ~flow:1)
      ()
  in
  Netsim.Parking_lot.set_src_recv lot ~flow:1 (Tfrc.Tfrc_sender.recv sender);
  Tfrc.Tfrc_sender.start sender ~at:0.;
  (* Two TCP cross flows per hop. *)
  let cross_mons =
    List.concat_map
      (fun hop ->
        List.map
          (fun k ->
            let flow = (100 * hop) + k in
            Netsim.Parking_lot.add_cross_flow lot ~flow ~hop ~rtt_base:0.06;
            let tcp_config = Tcpsim.Tcp_common.ns_sack in
            let cmon = Netsim.Flowmon.create (fun () -> Engine.Sim.now sim) in
            let sink =
              Tcpsim.Tcp_sink.create (Engine.Sim.runtime sim) ~config:tcp_config ~flow
                ~transmit:(Netsim.Parking_lot.dst_sender lot ~flow)
                ()
            in
            Netsim.Parking_lot.set_dst_recv lot ~flow
              (Netsim.Flowmon.wrap cmon (Tcpsim.Tcp_sink.recv sink));
            let tcp =
              Tcpsim.Tcp_sender.create (Engine.Sim.runtime sim) ~config:tcp_config ~flow
                ~transmit:(Netsim.Parking_lot.src_sender lot ~flow)
                ()
            in
            Netsim.Parking_lot.set_src_recv lot ~flow
              (Tcpsim.Tcp_sender.recv tcp);
            Tcpsim.Tcp_sender.start tcp
              ~at:(0.3 *. float_of_int ((2 * hop) + k));
            (hop, cmon))
          [ 1; 2 ])
      [ 1; 2; 3 ]
  in
  let duration = 90. in
  Engine.Sim.run sim ~until:duration;
  let t0 = 30. and t1 = duration in
  Printf.printf
    "A TFRC through-flow across %d congested 3 Mb/s hops, 2 TCP cross flows \
     per hop:\n\n"
    hops;
  Printf.printf "  TFRC (all %d hops): %6.1f KB/s (p=%.4f rtt=%.3f nofb=%d)\n" hops
    (Netsim.Flowmon.mean_rate mon ~t0 ~t1 /. 1e3)
    (Tfrc.Tfrc_sender.loss_event_rate sender)
    (Tfrc.Tfrc_sender.rtt sender)
    (Tfrc.Tfrc_sender.no_feedback_expirations sender);
  List.iter
    (fun hop ->
      let rates =
        List.filter_map
          (fun (h, m) ->
            if h = hop then Some (Netsim.Flowmon.mean_rate m ~t0 ~t1 /. 1e3)
            else None)
          cross_mons
      in
      Printf.printf "  TCP cross @ hop %d:  %s KB/s (util %.0f%%)\n" hop
        (String.concat " + " (List.map (Printf.sprintf "%.1f") rates))
        (100.
        *. Netsim.Link.utilization (Netsim.Parking_lot.link lot ~hop)
             ~duration))
    [ 1; 2; 3 ];
  Printf.printf
    "\nThe through flow pays every hop's loss rate, so it earns less than \
     any single-hop competitor — proportionally, not catastrophically: \
     equation-based control degrades gracefully across bottlenecks.\n"
