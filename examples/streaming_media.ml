(* Streaming media: the paper's motivating scenario.

   A "video stream" needs a rate that does not lurch every time one packet
   is lost. We run the same stream twice over a congested link shared with
   web traffic — once as TCP, once as TFRC — and compare how often the
   stream's 0.5 s rate falls below what a player buffer could absorb.

     dune exec examples/streaming_media.exe *)

let duration = 120.
let bandwidth = Engine.Units.mbps 3.

let run_stream ~use_tfrc ~seed =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.02
      ~queue:
        (Netsim.Dumbbell.Red_q
           (Netsim.Red.params ~min_th:5. ~max_th:20. ~limit_pkts:40 ()))
      ()
  in
  (* Competing web-like traffic at ~half the link. *)
  let web =
    Traffic.Web_mix.create db
      (Engine.Rng.split rng)
      ~first_flow_id:100
      ~arrival_rate:(0.5 *. bandwidth /. 8. /. 1000. /. 20.)
      ~mean_size:20. ~rtt_base:0.08 ()
  in
  Traffic.Web_mix.start web ~at:0.;
  (* The monitored media stream. *)
  let series =
    if use_tfrc then begin
      let h =
        Exp.Scenario.attach_tfrc db ~flow:1 ~rtt_base:0.08
          ~config:(Tfrc.Tfrc_config.default ())
      in
      Tfrc.Tfrc_sender.start h.tfrc_sender ~at:0.5;
      Netsim.Flowmon.series h.tfrc_recv_mon
    end
    else begin
      let h =
        Exp.Scenario.attach_tcp db ~flow:1 ~rtt_base:0.08
          ~config:Tcpsim.Tcp_common.ns_sack
      in
      Tcpsim.Tcp_sender.start h.tcp_sender ~at:0.5;
      Netsim.Flowmon.series h.tcp_recv_mon
    end
  in
  Engine.Sim.run sim ~until:duration;
  Stats.Time_series.rates series ~t0:20. ~t1:duration ~bin:0.5

let () =
  let tcp = run_stream ~use_tfrc:false ~seed:11 in
  let tfrc = run_stream ~use_tfrc:true ~seed:11 in
  let summarize label rates =
    let r = Stats.Running.of_array rates in
    let mean = Stats.Running.mean r in
    (* "Stall": a half-second bin below 50% of the stream's own mean — the
       kind of dip a playout buffer has to ride out. *)
    let stalls =
      Array.fold_left
        (fun acc v -> if v < 0.5 *. mean then acc + 1 else acc)
        0 rates
    in
    Printf.printf
      "%-5s mean %6.1f KB/s   CoV %.2f   bins below half-rate: %d/%d\n" label
      (mean /. 1e3) (Stats.Running.cov r) stalls (Array.length rates);
    (Stats.Running.cov r, stalls)
  in
  Printf.printf
    "A media stream competing with web traffic on a 3 Mb/s link (0.5 s \
     bins):\n\n";
  let tcp_cov, tcp_stalls = summarize "TCP" tcp in
  let tfrc_cov, tfrc_stalls = summarize "TFRC" tfrc in
  Printf.printf
    "\nTFRC delivers the same order of throughput with %.1fx lower rate \
     variation and %d fewer sub-half-rate dips — the paper's case for \
     equation-based congestion control for streaming media.\n"
    (tcp_cov /. Float.max 0.01 tfrc_cov)
    (tcp_stalls - tfrc_stalls)
