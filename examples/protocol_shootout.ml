(* Protocol shootout: TFRC vs the related-work rate-control protocols.

   Section 5 compares TFRC with RAP (pure AIMD on rates), TFRCP
   (equation-based at fixed epochs) and TEAR (receiver-side TCP window
   emulation). Each protocol runs alone against one TCP flow on the same
   bottleneck; we compare fairness and smoothness.

     dune exec examples/protocol_shootout.exe *)

let bandwidth = Engine.Units.mbps 4.
let duration = 120.

type contender = Tfrc_c | Rap_c | Tfrcp_c | Tear_c

let run contender ~seed =
  let sim = Engine.Sim.create () in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.02
      ~queue:(Netsim.Dumbbell.Droptail_q 35) ()
  in
  (* The TCP opponent. *)
  let tcp =
    Exp.Scenario.attach_tcp db ~flow:1 ~rtt_base:0.085
      ~config:Tcpsim.Tcp_common.ns_sack
  in
  Tcpsim.Tcp_sender.start tcp.tcp_sender ~at:0.2;
  (* The rate-controlled contender on flow 2. *)
  let flow = 2 in
  let now () = Engine.Sim.now sim in
  let mon = Netsim.Flowmon.create now in
  (match contender with
  | Tfrc_c ->
      let h =
        Exp.Scenario.attach_tfrc db ~flow ~rtt_base:0.08
          ~config:(Tfrc.Tfrc_config.default ())
      in
      Tfrc.Tfrc_sender.start h.tfrc_sender ~at:0.
  | Rap_c ->
      Netsim.Dumbbell.add_flow db ~flow ~rtt_base:0.08;
      let sink =
        Baselines.Echo_sink.create (Engine.Sim.runtime sim) ~flow
          ~transmit:(Netsim.Dumbbell.dst_sender db ~flow) ()
      in
      Netsim.Dumbbell.set_dst_recv db ~flow
        (Netsim.Flowmon.wrap mon (Baselines.Echo_sink.recv sink));
      let rap =
        Baselines.Rap.create (Engine.Sim.runtime sim) ~flow
          ~transmit:(Netsim.Dumbbell.src_sender db ~flow) ()
      in
      Netsim.Dumbbell.set_src_recv db ~flow (Baselines.Rap.recv rap);
      Baselines.Rap.start rap ~at:0.
  | Tfrcp_c ->
      Netsim.Dumbbell.add_flow db ~flow ~rtt_base:0.08;
      let sink =
        Baselines.Echo_sink.create (Engine.Sim.runtime sim) ~flow
          ~transmit:(Netsim.Dumbbell.dst_sender db ~flow) ()
      in
      Netsim.Dumbbell.set_dst_recv db ~flow
        (Netsim.Flowmon.wrap mon (Baselines.Echo_sink.recv sink));
      let tp =
        Baselines.Tfrcp.create (Engine.Sim.runtime sim) ~flow
          ~transmit:(Netsim.Dumbbell.src_sender db ~flow) ()
      in
      Netsim.Dumbbell.set_src_recv db ~flow (Baselines.Tfrcp.recv tp);
      Baselines.Tfrcp.start tp ~at:0.
  | Tear_c ->
      Netsim.Dumbbell.add_flow db ~flow ~rtt_base:0.08;
      let recvr =
        Baselines.Tear.Receiver.create (Engine.Sim.runtime sim) ~flow
          ~transmit:(Netsim.Dumbbell.dst_sender db ~flow) ()
      in
      Netsim.Dumbbell.set_dst_recv db ~flow
        (Netsim.Flowmon.wrap mon (Baselines.Tear.Receiver.recv recvr));
      let snd =
        Baselines.Tear.Sender.create (Engine.Sim.runtime sim) ~flow
          ~transmit:(Netsim.Dumbbell.src_sender db ~flow) ()
      in
      Netsim.Dumbbell.set_src_recv db ~flow (Baselines.Tear.Sender.recv snd);
      Baselines.Tear.Sender.start snd ~at:0.);
  ignore seed;
  Engine.Sim.run sim ~until:duration;
  let t0 = 30. and t1 = duration in
  (* The TFRC contender records into its own handle's monitor. *)
  let contender_series =
    if contender = Tfrc_c then
      (* attach_tfrc installed its own monitor; rebuild from receive side by
         re-deriving the flow's stats through the dumbbell's registered
         handler is not possible post-hoc, so TFRC uses its handle above.
         To keep this uniform we re-run attach for the TFRC case. *)
      None
    else Some (Netsim.Flowmon.series mon)
  in
  let fair = Engine.Units.bps_to_byte_rate bandwidth /. 2. in
  let tcp_rate = Netsim.Flowmon.mean_rate tcp.tcp_recv_mon ~t0 ~t1 in
  (contender_series, tcp_rate, fair, t0, t1)

(* TFRC needs its own variant that returns its monitor. *)
let run_tfrc ~seed =
  let sim = Engine.Sim.create () in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.02
      ~queue:(Netsim.Dumbbell.Droptail_q 35) ()
  in
  let tcp =
    Exp.Scenario.attach_tcp db ~flow:1 ~rtt_base:0.085
      ~config:Tcpsim.Tcp_common.ns_sack
  in
  Tcpsim.Tcp_sender.start tcp.tcp_sender ~at:0.2;
  let h =
    Exp.Scenario.attach_tfrc db ~flow:2 ~rtt_base:0.08
      ~config:(Tfrc.Tfrc_config.default ())
  in
  Tfrc.Tfrc_sender.start h.tfrc_sender ~at:0.;
  ignore seed;
  Engine.Sim.run sim ~until:duration;
  let t0 = 30. and t1 = duration in
  let fair = Engine.Units.bps_to_byte_rate bandwidth /. 2. in
  ( Netsim.Flowmon.series h.tfrc_recv_mon,
    Netsim.Flowmon.mean_rate tcp.tcp_recv_mon ~t0 ~t1,
    fair,
    t0,
    t1 )

let () =
  Printf.printf
    "One rate-controlled flow vs one SACK TCP on 4 Mb/s (fair share %.0f \
     KB/s):\n\n"
    (Engine.Units.bps_to_byte_rate bandwidth /. 2. /. 1e3);
  Printf.printf "%-7s %-12s %-12s %-10s %s\n" "proto" "own KB/s" "tcp KB/s"
    "CoV(0.5s)" "verdict";
  let report label series tcp_rate fair t0 t1 =
    let rate = Stats.Time_series.mean_rate series ~t0 ~t1 in
    let cov = Stats.Metrics.cov_at_timescale series ~t0 ~t1 ~tau:0.5 in
    let fairness = Float.min (rate /. tcp_rate) (tcp_rate /. rate) in
    Printf.printf "%-7s %-12.1f %-12.1f %-10.2f fairness %.2f %s\n" label
      (rate /. 1e3) (tcp_rate /. 1e3) cov fairness
      (if fairness > 0.5 then "" else "(poor)");
    ignore fair
  in
  let s, tcp_rate, fair, t0, t1 = run_tfrc ~seed:3 in
  report "TFRC" s tcp_rate fair t0 t1;
  (match run Rap_c ~seed:3 with
  | Some s, tcp_rate, fair, t0, t1 -> report "RAP" s tcp_rate fair t0 t1
  | None, _, _, _, _ -> ());
  (match run Tfrcp_c ~seed:3 with
  | Some s, tcp_rate, fair, t0, t1 -> report "TFRCP" s tcp_rate fair t0 t1
  | None, _, _, _, _ -> ());
  (match run Tear_c ~seed:3 with
  | Some s, tcp_rate, fair, t0, t1 -> report "TEAR" s tcp_rate fair t0 t1
  | None, _, _, _, _ -> ());
  Printf.printf
    "\nTFRC pairs competitive throughput with the lowest rate variation; \
     RAP is fair but saw-toothed, TFRCP's fixed epochs react late, TEAR's \
     receiver-smoothed AIMD sits in between (paper section 5).\n"
